"""Edge-case tests for the DES runtime: storage caps, medium queue, misc."""

import numpy as np
import pytest

from repro.models import get_spec
from repro.profiling import (
    MODEL_EFFICIENCY,
    RASPBERRY_PI_3B,
    LinkProfile,
    profile_for_model,
)
from repro.runtime import ADCNNConfig, ADCNNSystem, ADCNNWorkload, MediumQueue
from repro.simulator import SimNode, Simulator


def vgg_workload(num_tiles=32):
    return ADCNNWorkload.from_spec(get_spec("vgg16"), num_tiles=num_tiles, separable_prefix=13,
                                   compression_ratio=0.032)


class TestStorageConstraint:
    def test_storage_caps_allocation(self):
        """Eq. (1): a node with tiny storage receives few tiles even when
        it is fast."""
        wl = vgg_workload(num_tiles=32)
        tiny = wl.tile_input_bits * 2.5  # room for 2 tiles
        nodes = [
            SimNode("big", RASPBERRY_PI_3B),
            SimNode("small", RASPBERRY_PI_3B, storage_bits=tiny),
        ]
        system = ADCNNSystem(wl, nodes, SimNode("c", RASPBERRY_PI_3B),
                             config=ADCNNConfig(pipeline_depth=1))
        recs = system.run(4)
        for r in recs:
            assert r.allocation[1] <= 2
            assert r.allocation.sum() == 32


class TestMediumQueue:
    def test_fifo_ordering(self):
        sim = Simulator()
        mq = MediumQueue(sim, LinkProfile("l", bandwidth_bps=1e6))
        arrivals = []
        mq.request(1e6, lambda t: arrivals.append(("a", t)))
        mq.request(1e6, lambda t: arrivals.append(("b", t)))
        sim.run()
        assert arrivals[0][0] == "a" and arrivals[1][0] == "b"
        assert arrivals[1][1] == pytest.approx(arrivals[0][1] + 1.0)

    def test_negative_bits_rejected(self):
        mq = MediumQueue(Simulator(), LinkProfile("l", 1e6))
        with pytest.raises(ValueError):
            mq.request(-1.0, lambda t: None)

    def test_idle_restart(self):
        """The queue must restart cleanly after draining."""
        sim = Simulator()
        mq = MediumQueue(sim, LinkProfile("l", bandwidth_bps=1e6))
        times = []
        mq.request(1e6, lambda t: times.append(t))
        sim.run()
        sim.schedule_at(5.0, lambda: mq.request(1e6, lambda t: times.append(t)))
        sim.run()
        assert times[1] == pytest.approx(6.0)

    def test_bits_accumulated(self):
        sim = Simulator()
        mq = MediumQueue(sim, LinkProfile("l", 1e6))
        mq.request(100.0, lambda t: None)
        mq.request(200.0, lambda t: None)
        sim.run()
        assert mq.transferred_bits == 300.0

    def test_bits_credited_on_delivery_not_start(self):
        """A simulation stopped mid-transfer must not count the in-flight
        message: bits are credited when the transfer *completes*."""
        sim = Simulator()
        mq = MediumQueue(sim, LinkProfile("l", bandwidth_bps=1e6))
        mq.request(1e6, lambda t: None)  # delivers at t=1
        mq.request(1e6, lambda t: None)  # delivers at t=2
        sim.run(until=1.5)
        assert mq.transferred_bits == pytest.approx(1e6)
        sim.run()
        assert mq.transferred_bits == pytest.approx(2e6)

    def test_bits_zero_before_first_delivery(self):
        sim = Simulator()
        mq = MediumQueue(sim, LinkProfile("l", bandwidth_bps=1e6))
        mq.request(1e6, lambda t: None)
        sim.run(until=0.5)
        assert mq.transferred_bits == 0.0


class TestDeeperPipelines:
    def test_depth_three_throughput(self):
        wl = vgg_workload()
        per_image = {}
        for depth in (1, 3):
            nodes = [SimNode(f"n{i}", RASPBERRY_PI_3B) for i in range(4)]
            system = ADCNNSystem(wl, nodes, SimNode("c", RASPBERRY_PI_3B),
                                 config=ADCNNConfig(pipeline_depth=depth))
            system.run(10)
            per_image[depth] = system.makespan() / 10
        assert per_image[3] <= per_image[1]

    def test_depth_four_window_fills_at_start(self):
        """Regression: run() used to seed exactly two dispatches regardless
        of pipeline_depth, so depths >= 3 never filled their window.  All
        `pipeline_depth` slots must be in flight from t=0."""
        wl = vgg_workload()
        for depth in (3, 4):
            nodes = [SimNode(f"n{i}", RASPBERRY_PI_3B) for i in range(4)]
            system = ADCNNSystem(wl, nodes, SimNode("c", RASPBERRY_PI_3B),
                                 config=ADCNNConfig(pipeline_depth=depth))
            records = system.run(8)
            seeded = [r for r in records if r.dispatch_start == 0.0]
            assert len(seeded) == depth


class TestModelEfficiency:
    def test_known_families(self):
        assert MODEL_EFFICIENCY["resnet34"] < MODEL_EFFICIENCY["vgg16"]

    def test_profile_for_model_scales(self):
        resnet_dev = profile_for_model(RASPBERRY_PI_3B, "resnet34")
        assert resnet_dev.macs_per_second == pytest.approx(
            RASPBERRY_PI_3B.macs_per_second * MODEL_EFFICIENCY["resnet34"]
        )

    def test_unknown_model_identity(self):
        dev = profile_for_model(RASPBERRY_PI_3B, "unknown-model")
        assert dev.macs_per_second == RASPBERRY_PI_3B.macs_per_second
