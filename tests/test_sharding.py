"""Hierarchical multi-cluster sharding (DESIGN.md §5k).

Covers the whole tier: routing policies as pure functions, arrival-stream
splitting, the :class:`ClusterHandle` seam (lifecycle, kill poisoning,
restart), :class:`ClusterRouter` supervision (mark-down, re-route, typed
failure, probe revival), the router-backed :class:`ServingFrontEnd`
failover contract (every admitted image resolves — result or
``ClusterFailed`` — never a hang, in both backends), trace completeness
across re-routes, and the declarative spec / deployment API.
"""

import math
import time

import numpy as np
import pytest

from repro.models import get_spec, vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid
from repro.profiling import RASPBERRY_PI_3B
from repro.runtime import (
    ADCNNDeployment,
    ADCNNSystem,
    ADCNNWorkload,
    ProcessClusterConfig,
    poisson_arrival_times,
)
from repro.runtime.arrivals import split
from repro.serving import ClusterFailed, Overloaded, ServingConfig, ServingFrontEnd
from repro.sharding import (
    ClusterDown,
    ClusterRouter,
    ProcessClusterHandle,
    RouterConfig,
    RoutingRequest,
    STATE_DOWN,
    STATE_PROBATION,
    STATE_UP,
    ShardedDeploymentSpec,
    ShardedSystem,
    ShardFailure,
    ShardSpec,
    available_routing_policies,
    build_router,
    get_routing_policy,
    make_cluster_handle,
    register_routing_policy,
    resolve_routing_policy,
)
from repro.sharding.policies import (
    affinity,
    least_outstanding,
    round_robin,
    weighted_by_health,
)
from repro.simulator import SimNode
from repro.telemetry import LabeledRecorder, TelemetryRecorder
from repro.telemetry.trace import assemble_traces

RNG = np.random.default_rng(23)


def small_model():
    return vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()


def make_image():
    return RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)


def two_shard_spec(**overrides):
    kwargs = dict(policy="round_robin", mark_down_after=1, max_restarts=0)
    kwargs.update(overrides)
    return ShardedDeploymentSpec.homogeneous(2, num_workers=1, **kwargs)


def pump_until(router, want, timeout=90.0):
    """Pump the router until ``want`` outcomes arrive (or fail the test)."""
    done = []
    deadline = time.monotonic() + timeout
    while len(done) < want:
        assert time.monotonic() < deadline, f"only {len(done)}/{want} outcomes"
        done.extend(router.pump())
    return done


# ================================================================= policies
def request(candidates, outstanding, weights=None, health=None, **kw):
    n = len(outstanding)
    return RoutingRequest(
        candidates=tuple(candidates),
        names=tuple(f"s{i}" for i in range(n)),
        outstanding=tuple(outstanding),
        weights=tuple(weights or [1.0] * n),
        health=tuple(health or [None] * n),
        **kw,
    )


class TestRoutingPolicies:
    def test_registry(self):
        names = available_routing_policies()
        for name in ("round_robin", "least_outstanding", "weighted_by_health", "affinity"):
            assert name in names
            assert callable(get_routing_policy(name))
        assert resolve_routing_policy("round_robin") is round_robin
        assert resolve_routing_policy(least_outstanding) is least_outstanding
        with pytest.raises(KeyError, match="unknown routing policy"):
            get_routing_policy("nope")
        with pytest.raises(ValueError, match="already registered"):
            register_routing_policy("round_robin")(lambda r: 0)

    def test_round_robin_cycles(self):
        picks = [
            round_robin(request([0, 1, 2], [0, 0, 0], sequence=s)) for s in range(6)
        ]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_missing_candidates(self):
        picks = [round_robin(request([0, 2], [0, 0, 0], sequence=s)) for s in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_least_outstanding(self):
        assert least_outstanding(request([0, 1, 2], [3, 1, 2])) == 1
        # Ties break toward the lowest index, deterministically.
        assert least_outstanding(request([0, 1, 2], [2, 2, 2])) == 0

    def test_weighted_by_health_prefers_capacity_and_idleness(self):
        # Double weight wins when load and health are equal.
        assert weighted_by_health(request([0, 1], [0, 0], weights=[1.0, 2.0])) == 1
        # Outstanding load discounts the score.
        assert weighted_by_health(request([0, 1], [0, 3], weights=[1.0, 2.0])) == 0
        # Equal everything: lowest index.
        assert weighted_by_health(request([0, 1], [1, 1])) == 0

    def test_affinity_sticky_and_fallback(self):
        req = request([0, 1, 2], [9, 9, 9], client="cam-a", model="vgg")
        home = affinity(req)
        # Stable across calls and across load changes.
        assert affinity(request([0, 1, 2], [0, 5, 0], client="cam-a", model="vgg")) == home
        # Home not a candidate: degrade to least_outstanding among the rest.
        others = [c for c in (0, 1, 2) if c != home]
        fallback = affinity(request(others, [1, 1, 1], client="cam-a", model="vgg"))
        assert fallback in others

    def test_request_validation(self):
        with pytest.raises(ValueError, match="at least one candidate"):
            request([], [0, 0])
        with pytest.raises(ValueError, match="out of range"):
            request([5], [0, 0])
        with pytest.raises(ValueError, match="equal length"):
            RoutingRequest(
                candidates=(0,), names=("a", "b"), outstanding=(0,),
                weights=(1.0, 1.0), health=(None, None),
            )


# ============================================================ arrivals.split
class TestArrivalSplit:
    def test_round_robin_partition(self):
        times = np.arange(10, dtype=float)
        subs = split(times, 3)
        assert [s.tolist() for s in subs] == [
            [0.0, 3.0, 6.0, 9.0], [1.0, 4.0, 7.0], [2.0, 5.0, 8.0],
        ]

    def test_seeded_split_partitions_exactly(self):
        rng = np.random.default_rng(7)
        times = poisson_arrival_times(20.0, 500, rng)
        subs = split(times, 4, seed=11)
        merged = np.sort(np.concatenate(subs))
        np.testing.assert_array_equal(merged, times)
        for s in subs:
            assert np.all(np.diff(s) >= 0)  # order within each substream kept
        # Reproducible under the same seed, different under another.
        again = split(times, 4, seed=11)
        for a, b in zip(subs, again):
            np.testing.assert_array_equal(a, b)
        other = split(times, 4, seed=12)
        assert any(a.size != b.size or not np.array_equal(a, b)
                   for a, b in zip(subs, other))

    def test_identity_and_validation(self):
        times = np.array([0.5, 1.5])
        np.testing.assert_array_equal(split(times, 1)[0], times)
        with pytest.raises(ValueError, match="at least one"):
            split(times, 0)
        with pytest.raises(ValueError):
            split(np.zeros((2, 2)), 2)


# ============================================================ LabeledRecorder
class TestLabeledRecorder:
    def test_labels_and_node_prefix(self):
        base = TelemetryRecorder()
        tel = LabeledRecorder(base, cluster="shard3")
        tel.record(0.0, "cluster_down", cluster_name="x")
        tel.span("tile_compute", 0.0, 1.0, node="worker0", image_id=1)
        tel.count("adcnn_router_dispatch_total", node="worker1")
        assert base.events[0]["cluster"] == "shard3"
        assert base.events[1]["node"] == "shard3/worker0"
        counter = base.metrics.counter(
            "adcnn_router_dispatch_total", node="shard3/worker1", cluster="shard3"
        )
        assert counter.value == 1.0

    def test_fixed_labels_win_and_extras_delegate(self):
        base = TelemetryRecorder()
        tel = LabeledRecorder(base, cluster="a")
        tel.record(0.0, "probe_success", cluster="call-site")
        assert base.events[0]["cluster"] == "a"
        assert tel.enabled
        assert tel.of_kind("probe_success")  # duck-typed passthrough
        assert tel.inner is base


# ================================================================== handles
class TestProcessClusterHandle:
    def test_factory_lifecycle_and_inference(self):
        model = small_model()
        reference = FDSPModel(model, TileGrid(2, 2))
        reference.eval()
        handle = make_cluster_handle(
            model, TileGrid(2, 2),
            config=ProcessClusterConfig(num_workers=1, t_limit=30.0),
            name="h0", window=2,
        )
        assert handle.restartable and not handle.alive()
        img = make_image()
        with handle:
            assert handle.alive() and handle.can_dispatch
            handle.dispatch(img)
            (image_id, outcome), = pump_until(handle, 1)
            np.testing.assert_allclose(
                outcome.output, reference(Tensor(img)).data, atol=1e-5
            )
        assert not handle.alive()

    def test_dispatch_before_start_raises(self):
        handle = make_cluster_handle(
            small_model(), TileGrid(2, 2),
            config=ProcessClusterConfig(num_workers=1),
        )
        with pytest.raises(ClusterDown, match="not started"):
            handle.dispatch(make_image())

    def test_kill_poisons_handle(self):
        handle = make_cluster_handle(
            small_model(), TileGrid(2, 2),
            config=ProcessClusterConfig(num_workers=1, t_limit=5.0),
        )
        with handle:
            handle.kill()
            assert not handle.alive()
            assert handle.terminal
            with pytest.raises(ClusterDown):
                handle.dispatch(make_image())
            with pytest.raises(ClusterDown):
                handle.pump()
            assert handle.result_readers() == []

    def test_restart_builds_fresh_incarnation(self):
        handle = make_cluster_handle(
            small_model(), TileGrid(2, 2),
            config=ProcessClusterConfig(num_workers=1, t_limit=30.0),
        )
        try:
            handle.start()
            handle.kill()
            handle.restart()
            assert handle.alive() and handle.restarts == 1
            handle.dispatch(make_image())
            (_, outcome), = pump_until(handle, 1)
            assert outcome.output is not None
        finally:
            handle.stop()

    def test_adopted_handle_not_restartable(self):
        dep = ADCNNDeployment(small_model(), TileGrid(2, 2))
        cluster = dep.serve(dep.cluster_config(num_workers=1))
        handle = ProcessClusterHandle.adopt(cluster, name="adopted")
        assert not handle.restartable
        with pytest.raises(ClusterDown, match="not restartable"):
            handle.restart()


# =================================================================== router
class TestClusterRouter:
    def test_config_validation(self):
        with pytest.raises(KeyError, match="unknown routing policy"):
            RouterConfig(policy="bogus")
        with pytest.raises(ValueError):
            RouterConfig(mark_down_after=0)
        with pytest.raises(ValueError):
            RouterConfig(max_reroutes=-1)

    def test_duplicate_shard_names_rejected(self):
        mk = lambda: make_cluster_handle(  # noqa: E731
            small_model(), TileGrid(2, 2),
            config=ProcessClusterConfig(num_workers=1), name="dup",
        )
        with pytest.raises(ValueError, match="unique"):
            ClusterRouter([mk(), mk()])

    def test_fans_out_and_completes(self):
        model = small_model()
        reference = FDSPModel(model, TileGrid(2, 2))
        reference.eval()
        router = build_router(model, TileGrid(2, 2), two_shard_spec())
        images = [make_image() for _ in range(4)]
        with router:
            ids = [router.dispatch(img) for img in images]
            assert len(set(ids)) == 4  # globally unique across shards
            done = dict(pump_until(router, 4))
            for rid, img in zip(ids, images):
                np.testing.assert_allclose(
                    done[rid].output, reference(Tensor(img)).data, atol=1e-5
                )
            health = router.health()
            assert health.routable_shards == 2
            assert health.images_dispatched >= 4
            # round_robin with both shards up spreads work across both.
            states = router.cluster_states()
            assert set(states) == {"shard0", "shard1"}

    def test_failover_reroutes_in_flight(self):
        """Kill one shard with images in flight: siblings finish the work."""
        model = small_model()
        reference = FDSPModel(model, TileGrid(2, 2))
        reference.eval()
        router = build_router(model, TileGrid(2, 2), two_shard_spec())
        images = [make_image() for _ in range(6)]
        with router:
            ids = [router.dispatch(img) for img in images]
            router._handles[0].kill()
            done = dict(pump_until(router, 6))
            assert set(done) == set(ids)
            for rid, img in zip(ids, images):
                outcome = done[rid]
                assert not isinstance(outcome, ShardFailure)
                np.testing.assert_allclose(
                    outcome.output, reference(Tensor(img)).data, atol=1e-5
                )
            states = router.cluster_states()
            assert states["shard0"] == STATE_DOWN
            assert states["shard1"] == STATE_UP
            health = router.health()
            assert not health.healthy
            assert health.routable_shards == 1

    def test_total_outage_fails_typed_never_hangs(self):
        router = build_router(small_model(), TileGrid(2, 2), two_shard_spec())
        with router:
            ids = [router.dispatch(make_image()) for _ in range(3)]
            for handle in router._handles:
                handle.kill()
            done = dict(pump_until(router, 3))
            assert set(done) == set(ids)
            for outcome in done.values():
                assert isinstance(outcome, ShardFailure)
                exc = outcome.to_exception()
                assert isinstance(exc, ClusterFailed)
            assert router.terminal

    def test_restart_and_probe_revival(self):
        """A killed shard restarts after backoff, passes probation, and
        serves again (the full down -> restarting -> probation -> up arc)."""
        spec = two_shard_spec(
            max_restarts=1, mark_down_after=3, restart_backoff=0.05,
        )
        router = build_router(small_model(), TileGrid(2, 2), spec)
        with router:
            rid = router.dispatch(make_image())
            router._handles[0].kill()
            done = dict(pump_until(router, 1))
            assert rid in done and not isinstance(done[rid], ShardFailure)
            # Pump until supervision rebuilds shard0 into probation.
            deadline = time.monotonic() + 90.0
            while router.cluster_states()["shard0"] not in (STATE_UP, STATE_PROBATION):
                assert time.monotonic() < deadline, router.cluster_states()
                leftovers = router.pump(block=False)
                assert all(not isinstance(o, ShardFailure) for _, o in leftovers)
                time.sleep(0.02)
            # The next dispatched image is the probe; its completion
            # promotes the shard back to up.
            rid2 = router.dispatch(make_image())
            done2 = dict(pump_until(router, 1))
            assert rid2 in done2 and not isinstance(done2[rid2], ShardFailure)
            assert router.cluster_states()["shard0"] == STATE_UP
            assert router._handles[0].restarts == 1

    def test_trace_tree_complete_after_reroute(self):
        """Failover preserves exactly one complete trace tree per image."""
        tel = TelemetryRecorder()
        router = build_router(
            small_model(), TileGrid(2, 2), two_shard_spec(), telemetry=tel
        )
        with router:
            ids = [router.dispatch(make_image()) for _ in range(4)]
            router._handles[0].kill()
            done = dict(pump_until(router, 4))
            assert all(not isinstance(o, ShardFailure) for o in done.values())
        trees = assemble_traces(tel.events)
        complete = [t for t in trees.values() if t.complete]
        assert len(complete) == len(ids)


# ===================================================== frontend failover (§5k)
class TestServingFailover:
    def test_process_backend_kill_one_shard(self):
        """Every admitted image resolves after a shard dies: re-routed result
        or typed ClusterFailed, never a hang; drain stays graceful."""
        model = small_model()
        reference = FDSPModel(model, TileGrid(2, 2))
        reference.eval()
        router = build_router(model, TileGrid(2, 2), two_shard_spec())
        images = [make_image() for _ in range(8)]
        with ServingFrontEnd(
            router, ServingConfig(window=4, queue_capacity=16)
        ) as fe:
            warm = [fe.submit(img) for img in images[:2]]
            for fut, img in zip(warm, images[:2]):
                np.testing.assert_allclose(
                    fut.result(timeout=90).outcome.output,
                    reference(Tensor(img)).data, atol=1e-5,
                )
            futures = [fe.submit(img) for img in images[2:]]
            router._handles[0].kill()
            outcomes = []
            for fut, img in zip(futures, images[2:]):
                try:
                    res = fut.result(timeout=90)
                except ClusterFailed:
                    outcomes.append("failed")
                    continue
                np.testing.assert_allclose(
                    res.outcome.output, reference(Tensor(img)).data, atol=1e-5
                )
                outcomes.append("ok")
            # With a healthy sibling, everything re-routes.
            assert outcomes == ["ok"] * len(outcomes)
            status = fe.status()
            assert status.completed == len(images)
            assert status.failed == 0
            health = fe.health()
            assert {s.name: s.state for s in health.shards}["shard0"] == STATE_DOWN
        # Graceful drain with a dead shard: stop() already returned, cleanly.

    def test_process_backend_total_outage_resolves_typed(self):
        router = build_router(small_model(), TileGrid(2, 2), two_shard_spec())
        with ServingFrontEnd(
            router, ServingConfig(window=4, queue_capacity=16, drain_timeout=15.0)
        ) as fe:
            futures = [fe.submit(make_image()) for _ in range(4)]
            for handle in router._handles:
                handle.kill()
            kinds = set()
            for fut in futures:
                with pytest.raises((ClusterFailed, Overloaded)) as err:
                    fut.result(timeout=90)
                kinds.add(type(err.value).__name__)
            assert kinds  # every future resolved, typed
            stats = fe.client_stats()
            assert stats.submitted == 4
            assert stats.completed == 0

    def test_single_cluster_handle_kill_fails_typed(self):
        """The adopted single-cluster path inherits the same contract: a
        poisoned handle fails pending work typed instead of hanging."""
        handle = make_cluster_handle(
            small_model(), TileGrid(2, 2),
            config=ProcessClusterConfig(num_workers=1, t_limit=30.0),
            name="solo",
        )
        with ServingFrontEnd(
            handle, ServingConfig(window=2, queue_capacity=8, drain_timeout=10.0)
        ) as fe:
            fut = fe.submit(make_image())
            fut.result(timeout=90)  # warm: the handle serves normally
            futures = [fe.submit(make_image()) for _ in range(3)]
            handle.kill()
            for fut in futures:
                with pytest.raises((ClusterFailed, Overloaded)):
                    fut.result(timeout=90)

    def test_des_backend_sharded_open_loop(self):
        """DES face of the same contract: islands absorb a dying node and the
        aggregate admission ledger still balances exactly."""
        def island(i):
            wl = ADCNNWorkload.from_spec(
                get_spec("vgg16"), num_tiles=16, separable_prefix=13,
                compression_ratio=0.032,
            )
            nodes = [
                SimNode(f"i{i}n{k}", RASPBERRY_PI_3B,
                        fail_time=5.0 if (i == 0 and k == 0) else None)
                for k in range(4)
            ]
            return ADCNNSystem(wl, nodes, SimNode(f"i{i}c", RASPBERRY_PI_3B))

        sharded = ShardedSystem(island, 2)
        rng = np.random.default_rng(3)
        res = sharded.run_open_loop(
            poisson_arrival_times(2.0, 40, rng), queue_capacity=8
        )
        assert res.offered == 40
        assert res.offered == res.completed + res.failed + res.shed
        assert res.horizon > 0 and res.throughput > 0
        assert math.isfinite(res.sojourn_quantile(0.5))


# ============================================================= DES sharding
class TestShardedSystem:
    @staticmethod
    def island(_i):
        wl = ADCNNWorkload.from_spec(
            get_spec("vgg16"), num_tiles=64, separable_prefix=13,
            compression_ratio=0.032,
        )
        nodes = [SimNode(f"n{k}", RASPBERRY_PI_3B) for k in range(8)]
        return ADCNNSystem(wl, nodes, SimNode("central", RASPBERRY_PI_3B))

    def test_aggregate_matches_islands(self):
        rng = np.random.default_rng(5)
        times = poisson_arrival_times(4.0, 60, rng)
        sharded = ShardedSystem(self.island, 3, split_seed=2)
        res = sharded.run_open_loop(times, queue_capacity=8)
        live = [r for r in res.per_cluster if r is not None]
        assert res.offered == sum(r.offered for r in live) == 60
        assert res.completed == sum(r.completed for r in live)
        assert res.horizon == max(r.horizon for r in live)
        assert res.offered == res.completed + res.failed + res.shed
        pooled = res.sojourns()
        assert pooled.size == sum(r.sojourns().size for r in live)

    def test_more_islands_raise_saturated_throughput(self):
        """At a rate far past one island's knee, 2 islands complete more
        per sim-second (the quick version of bench_sharding's curve)."""
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        times_a = poisson_arrival_times(18.0, 80, rng_a)
        times_b = poisson_arrival_times(18.0, 80, rng_b)
        single = ShardedSystem(self.island, 1).run_open_loop(times_a, queue_capacity=8)
        double = ShardedSystem(self.island, 2).run_open_loop(times_b, queue_capacity=8)
        assert double.throughput > single.throughput * 1.5
        assert double.shed_fraction <= single.shed_fraction

    def test_empty_substream_skipped(self):
        sharded = ShardedSystem(self.island, 3)
        res = sharded.run_open_loop([0.0, 1.0])  # third island gets nothing
        assert res.per_cluster[2] is None
        assert res.offered == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="num_clusters"):
            ShardedSystem(self.island)
        with pytest.raises(ValueError, match="at least one island"):
            ShardedSystem([])
        with pytest.raises(ValueError, match="one name per island"):
            ShardedSystem(self.island, 2, names=("a",))


# ======================================================== spec & deployment
class TestSpecAndDeployment:
    def test_shard_spec_validation(self):
        with pytest.raises(ValueError, match="non-empty name"):
            ShardSpec("")
        with pytest.raises(ValueError, match="num_workers"):
            ShardSpec("s", num_workers=0)
        with pytest.raises(ValueError, match="weight"):
            ShardSpec("s", weight=0.0)

    def test_spec_validation_and_builders(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedDeploymentSpec(shards=())
        with pytest.raises(ValueError, match="unique"):
            ShardedDeploymentSpec(shards=(ShardSpec("a"), ShardSpec("a")))
        with pytest.raises(KeyError, match="unknown routing policy"):
            ShardedDeploymentSpec.homogeneous(2, policy="bogus")
        spec = ShardedDeploymentSpec.homogeneous(3, num_workers=1)
        assert [s.name for s in spec.shards] == ["shard0", "shard1", "shard2"]
        assert spec.weights == [1.0, 1.0, 1.0]
        assert spec.with_policy("round_robin").policy == "round_robin"
        override = ProcessClusterConfig(num_workers=4, t_limit=9.0)
        shard = ShardSpec("big", config=override)
        assert shard.cluster_config(t_limit=30.0) is override
        assert spec.shards[0].cluster_config(t_limit=12.5).t_limit == 12.5

    def test_serve_accepts_config_object(self):
        dep = ADCNNDeployment(small_model(), TileGrid(2, 2))
        cfg = dep.cluster_config(num_workers=1, t_limit=7.0)
        cluster = dep.serve(cfg)
        assert cluster.config is cfg
        with pytest.raises(TypeError, match="not both"):
            dep.serve(cfg, t_limit=3.0)

    def test_serve_legacy_kwargs_deprecated_but_working(self):
        dep = ADCNNDeployment(small_model(), TileGrid(2, 2))
        with pytest.warns(DeprecationWarning, match="deprecated"):
            cluster = dep.serve(num_workers=1, t_limit=4.0)
        assert cluster.config.num_workers == 1
        assert cluster.config.t_limit == 4.0
        with pytest.warns(DeprecationWarning):
            cluster = dep.serve(3)  # bare positional worker count
        assert cluster.config.num_workers == 3

    def test_serve_sharded_end_to_end(self):
        dep = ADCNNDeployment(small_model(), TileGrid(2, 2))
        router = dep.serve_sharded(two_shard_spec())
        assert [h.name for h in router._handles] == ["shard0", "shard1"]
        img = make_image()
        expect = dep.infer_local(img)
        with ServingFrontEnd(router, ServingConfig(window=4)) as fe:
            result = fe.submit(img).result(timeout=90)
        np.testing.assert_allclose(result.outcome.output, expect, atol=1e-5)
