"""Hypothesis property tests on the autograd engine and conv kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import signal

import repro.nn.functional as F
from repro.nn import Tensor


@st.composite
def conv_case(draw):
    n = draw(st.integers(1, 2))
    c = draw(st.integers(1, 3))
    o = draw(st.integers(1, 3))
    k = draw(st.sampled_from([1, 3, 5]))
    stride = draw(st.integers(1, 2))
    padding = draw(st.integers(0, 2))
    h = draw(st.integers(k, k + 6))
    w = draw(st.integers(k, k + 6))
    seed = draw(st.integers(0, 2**16))
    return n, c, o, k, stride, padding, h, w, seed


class TestConvProperties:
    @settings(max_examples=30, deadline=None)
    @given(case=conv_case())
    def test_matches_scipy_reference(self, case):
        """conv2d equals direct scipy correlation for arbitrary geometry."""
        n, c, o, k, stride, padding, h, w, seed = case
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, c, h, w))
        wgt = rng.normal(size=(o, c, k, k))
        out = F.conv2d(Tensor(x), Tensor(wgt), stride=stride, padding=padding).data
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        for i in range(n):
            for j in range(o):
                acc = sum(signal.correlate2d(xp[i, ch], wgt[j, ch], mode="valid") for ch in range(c))
                np.testing.assert_allclose(out[i, j], acc[::stride, ::stride], atol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(case=conv_case())
    def test_gradient_shapes(self, case):
        """Backward always produces gradients matching parameter shapes."""
        n, c, o, k, stride, padding, h, w, seed = case
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(n, c, h, w)), requires_grad=True)
        wgt = Tensor(rng.normal(size=(o, c, k, k)), requires_grad=True)
        b = Tensor(rng.normal(size=(o,)), requires_grad=True)
        F.conv2d(x, wgt, b, stride=stride, padding=padding).sum().backward()
        assert x.grad.shape == x.shape
        assert wgt.grad.shape == wgt.shape
        assert b.grad.shape == b.shape

    @settings(max_examples=20, deadline=None)
    @given(
        scale=st.floats(-3.0, 3.0),
        seed=st.integers(0, 1000),
    )
    def test_conv_homogeneity(self, scale, seed):
        """conv(s*x) == s*conv(x) (no bias)."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, 8, 8)).astype(np.float64)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        lhs = F.conv2d(Tensor(scale * x), w, padding=1).data
        rhs = scale * F.conv2d(Tensor(x), w, padding=1).data
        np.testing.assert_allclose(lhs, rhs, atol=1e-8)


class TestAutogradProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        depth=st.integers(1, 6),
    )
    def test_chain_rule_on_random_elementwise_chains(self, seed, depth):
        """Random chains of smooth unary ops gradcheck numerically."""
        rng = np.random.default_rng(seed)
        ops = rng.choice(["tanh", "sigmoid", "exp_s", "mul2", "add1"], size=depth)

        def apply_chain(t: Tensor) -> Tensor:
            for op in ops:
                if op == "tanh":
                    t = t.tanh()
                elif op == "sigmoid":
                    t = t.sigmoid()
                elif op == "exp_s":
                    t = (t * 0.3).exp()
                elif op == "mul2":
                    t = t * 2.0
                else:
                    t = t + 1.0
            return t.sum()

        x = rng.normal(scale=0.5, size=(4,))
        t = Tensor(x.astype(np.float64), requires_grad=True)
        apply_chain(t).backward()
        analytic = t.grad.copy()
        eps = 1e-5
        for i in range(x.size):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            hi = float(apply_chain(Tensor(xp)).data)
            lo = float(apply_chain(Tensor(xm)).data)
            assert analytic[i] == pytest.approx((hi - lo) / (2 * eps), rel=2e-3, abs=2e-5)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_sum_of_grads_equals_grad_of_sum(self, seed):
        """Linearity of the backward pass over graph reuse."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(5,)), requires_grad=True)
        (x.tanh().sum() + x.tanh().sum()).backward()
        double = x.grad.copy()
        x.zero_grad()
        (x.tanh().sum()).backward()
        np.testing.assert_allclose(double, 2 * x.grad, atol=1e-6)
