"""Cross-cutting property-based tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import get_spec
from repro.profiling import RASPBERRY_PI_3B, DeviceProfile, LinkProfile
from repro.runtime import ADCNNConfig, ADCNNSystem, ADCNNWorkload
from repro.simulator import CpuSchedule, SimNode

SPEC = get_spec("vgg16")


def build_system(num_nodes: int, num_tiles: int, factors=None, link_bw=87.72e6):
    workload = ADCNNWorkload.from_spec(SPEC, num_tiles=num_tiles, separable_prefix=13,
                                       compression_ratio=0.032)
    factors = factors or [1.0] * num_nodes
    nodes = [SimNode(f"n{i}", RASPBERRY_PI_3B.scaled(f)) for i, f in enumerate(factors)]
    return ADCNNSystem(
        workload,
        nodes,
        SimNode("c", RASPBERRY_PI_3B),
        link=LinkProfile("l", link_bw, 2e-4),
        config=ADCNNConfig(pipeline_depth=1),
    )


class TestSystemInvariants:
    @settings(max_examples=12, deadline=None)
    @given(
        num_nodes=st.integers(2, 6),
        num_tiles=st.sampled_from([16, 32, 64]),
        num_images=st.integers(2, 6),
    )
    def test_tile_conservation(self, num_nodes, num_tiles, num_images):
        """Every image's allocation sums to the tile count; received +
        zero-filled = allocated."""
        system = build_system(num_nodes, num_tiles)
        for rec in system.run(num_images):
            assert rec.allocation.sum() == num_tiles
            assert rec.received.sum() + rec.zero_filled_tiles == num_tiles

    @settings(max_examples=10, deadline=None)
    @given(
        num_nodes=st.integers(2, 5),
        num_images=st.integers(2, 5),
    )
    def test_causality(self, num_nodes, num_images):
        """dispatch <= dispatch_done <= trigger <= completion per image."""
        system = build_system(num_nodes, 32)
        for rec in system.run(num_images):
            assert rec.dispatch_start <= rec.dispatch_done <= rec.trigger_time <= rec.completion

    @settings(max_examples=8, deadline=None)
    @given(factors=st.lists(st.floats(0.2, 2.0), min_size=2, max_size=5))
    def test_heterogeneous_bits_conservation(self, factors):
        """Medium bit accounting equals the workload's exact volume."""
        system = build_system(len(factors), 32, factors=factors)
        n = 3
        system.run(n)
        total_zero_filled = sum(r.zero_filled_tiles for r in system.records)
        if total_zero_filled == 0:
            wl = system.workload
            expected = n * (wl.input_bits + wl.output_bits)
            assert system.total_transferred_bits() == pytest.approx(expected, rel=1e-6)

    @settings(max_examples=8, deadline=None)
    @given(bw=st.floats(5e6, 500e6))
    def test_faster_link_never_slower(self, bw):
        """Latency is monotone in link bandwidth (same everything else)."""
        slow = build_system(4, 32, link_bw=bw)
        fast = build_system(4, 32, link_bw=bw * 2)
        slow.run(4)
        fast.run(4)
        assert fast.mean_latency() <= slow.mean_latency() * 1.001

    def test_utilization_bounds(self):
        system = build_system(4, 32)
        system.run(5)
        util = system.node_utilization()
        assert (util >= 0).all() and (util <= 1.0 + 1e-9).all()

    def test_homogeneous_high_utilization(self):
        """§6.3: 'nearly perfect utilization' on a balanced cluster."""
        system = build_system(8, 64)
        system.run(10)
        util = system.node_utilization()
        assert util.mean() > 0.5
        assert util.std() < 0.05  # balanced


class TestWorkloadProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        num_tiles=st.sampled_from([4, 16, 64, 256]),
        prefix=st.integers(1, 13),
        ratio=st.floats(0.01, 1.0),
    )
    def test_conservation(self, num_tiles, prefix, ratio):
        wl = ADCNNWorkload.from_spec(SPEC, num_tiles=num_tiles, separable_prefix=prefix,
                                     compression_ratio=ratio)
        assert wl.separable_macs + wl.rest_macs == pytest.approx(SPEC.total_macs(), rel=1e-9)
        assert wl.input_bits == pytest.approx(SPEC.input_elements() * 32, rel=1e-9)
        assert wl.tile_output_bits >= 0

    @settings(max_examples=15, deadline=None)
    @given(prefix=st.integers(1, 13))
    def test_deeper_prefix_less_rest(self, prefix):
        shallow = ADCNNWorkload.from_spec(SPEC, 64, separable_prefix=prefix)
        if prefix < 13:
            deeper = ADCNNWorkload.from_spec(SPEC, 64, separable_prefix=prefix + 1)
            assert deeper.rest_macs <= shallow.rest_macs


class TestDeviceProperties:
    @settings(max_examples=20, deadline=None)
    @given(macs=st.floats(0, 1e12), factor=st.floats(0.1, 10))
    def test_scaling_inverse(self, macs, factor):
        base = DeviceProfile("d", 1e9)
        scaled = base.scaled(factor)
        base_t = base.compute_time(macs) - base.invocation_overhead_s
        scaled_t = scaled.compute_time(macs) - scaled.invocation_overhead_s
        assert scaled_t * factor == pytest.approx(base_t, rel=1e-9, abs=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        changes=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0.05, 1.0)), min_size=0, max_size=4
        ).map(lambda c: tuple(sorted(c)))
    )
    def test_throttled_never_faster(self, changes):
        """Any CPU schedule with factors <= 1 can only delay completion."""
        plain = SimNode("a", DeviceProfile("d", 1e9))
        throttled = SimNode("b", DeviceProfile("d", 1e9), cpu_schedule=CpuSchedule(changes))
        work = 5e9
        t_plain = plain.submit(0.0, work)
        t_throttled = throttled.submit(0.0, work)
        assert t_throttled >= t_plain - 1e-9


class TestBatchedFDSPBitIdentity:
    """Tentpole invariant (DESIGN.md §5i): the tile-batched grid forward is
    bit-identical to the per-tile reference loop — per architecture family,
    grid shape, batch size, and zero-fill pattern.  Holds because clip and
    quantize are elementwise and the conv GEMM is dispatched per sample.
    """

    _GRIDS = {
        "vgg_mini": ("2x2", "3x3", "4x4", "2x3", "1x4"),
        "resnet_mini": ("2x2", "3x3", "2x1"),
        "yolo_mini": ("2x2", "4x4"),
        "fcn_mini": ("2x2", "3x3"),
        "charcnn_mini": ("2x2", "1x4", "2x1"),  # → SegmentGrid
    }
    _CACHE = {}

    @classmethod
    def _fdsp(cls, name, grid_spec):
        import repro.nn as nn
        from repro.models import charcnn_mini, fcn_mini, resnet_mini, vgg_mini, yolo_mini
        from repro.partition import FDSPModel

        key = (name, grid_spec)
        if key not in cls._CACHE:
            builders = {
                "vgg_mini": lambda: vgg_mini(num_classes=3, input_size=48, base_width=6),
                "resnet_mini": lambda: resnet_mini(num_classes=3, input_size=48, base_width=6),
                "yolo_mini": lambda: yolo_mini(num_classes=3, input_size=48, base_width=6),
                "fcn_mini": lambda: fcn_mini(num_classes=3, input_size=48, base_width=6),
                "charcnn_mini": lambda: charcnn_mini(num_classes=3, base_width=8),
            }
            fdsp = FDSPModel(
                builders[name](),
                grid_spec,
                clipped_relu=nn.ClippedReLU(0.0, 6.0),
                quantizer=nn.QuantizeSTE(bits=4, max_value=6.0),
            )
            fdsp.eval()
            cls._CACHE[key] = fdsp
        return cls._CACHE[key]

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_batched_equals_looped_with_zero_fill(self, data):
        import repro.nn as nn
        from repro.nn import Tensor
        from repro.partition.fdsp import _fdsp_forward_looped, fdsp_forward
        from repro.partition.geometry import reassemble_tensor, split_tensor
        from repro.runtime.zero_fill import forward_with_missing_tiles

        name = data.draw(st.sampled_from(sorted(self._GRIDS)), label="model")
        grid_spec = data.draw(st.sampled_from(self._GRIDS[name]), label="grid")
        batch = data.draw(st.integers(1, 2), label="batch")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        fdsp = self._fdsp(name, grid_spec)
        num_tiles = fdsp.grid.num_tiles
        missing = data.draw(
            st.sets(st.integers(0, num_tiles - 1), max_size=num_tiles), label="missing"
        )
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(batch, *fdsp.model.input_shape)).astype(np.float32)
        separable = fdsp.model.separable_part()
        separable.eval()
        with nn.no_grad():
            # 1) the raw separable forward: batched == looped, bitwise
            batched = fdsp_forward(separable, Tensor(x), fdsp.grid).data
            looped = _fdsp_forward_looped(separable, Tensor(x), fdsp.grid).data
            np.testing.assert_array_equal(batched, looped)
            # 2) the full zero-fill path == the seed per-tile reference
            got = forward_with_missing_tiles(fdsp, x, missing).data
            outs = []
            for tile_id, tile in enumerate(split_tensor(Tensor(x), fdsp.grid)):
                out = fdsp.quant(fdsp.clip(separable(tile)))
                if tile_id in missing:
                    out = Tensor(np.zeros_like(out.data))
                outs.append(out)
            feature_map = reassemble_tensor(outs, fdsp.grid)
            expected = fdsp.model.rest_part()(feature_map).data
            np.testing.assert_array_equal(got, expected)
