"""Tests for zero-fill robustness evaluation and batch partitioning."""

import numpy as np
import pytest

from repro.models import get_spec, vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid, batch_partition_metrics
from repro.runtime import accuracy_under_tile_loss, forward_with_missing_tiles

RNG = np.random.default_rng(59)


def make_fdsp():
    model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()
    return FDSPModel(model, TileGrid(2, 2))


class TestForwardWithMissingTiles:
    def test_no_missing_equals_normal(self):
        fdsp = make_fdsp()
        fdsp.eval()
        x = RNG.normal(size=(2, 3, 24, 24)).astype(np.float32)
        normal = fdsp(Tensor(x)).data
        out = forward_with_missing_tiles(fdsp, x, []).data
        np.testing.assert_allclose(out, normal, atol=1e-5)

    def test_missing_changes_output(self):
        fdsp = make_fdsp()
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        normal = forward_with_missing_tiles(fdsp, x, []).data
        degraded = forward_with_missing_tiles(fdsp, x, [0, 1]).data
        assert not np.allclose(normal, degraded, atol=1e-5)

    def test_all_missing_is_zero_input_to_rest(self):
        fdsp = make_fdsp()
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        out_all_missing = forward_with_missing_tiles(fdsp, x, range(4)).data
        zeros = forward_with_missing_tiles(fdsp, np.zeros_like(x) * np.nan, range(4)).data
        np.testing.assert_allclose(out_all_missing, zeros, atol=1e-5)

    def test_invalid_tile_id(self):
        fdsp = make_fdsp()
        with pytest.raises(ValueError):
            forward_with_missing_tiles(fdsp, np.zeros((1, 3, 24, 24), np.float32), [99])


class TestAccuracyUnderTileLoss:
    def test_zero_loss_equals_full_accuracy(self):
        fdsp = make_fdsp()
        x = RNG.normal(size=(12, 3, 24, 24)).astype(np.float32)
        y = RNG.integers(0, 3, size=12)
        base = accuracy_under_tile_loss(fdsp, x, y, 0.0)
        assert 0.0 <= base <= 1.0

    def test_full_loss_near_chance(self):
        """With every tile zero-filled the model sees no input signal, so
        predictions collapse to a constant class."""
        fdsp = make_fdsp()
        x = RNG.normal(size=(30, 3, 24, 24)).astype(np.float32)
        y = RNG.integers(0, 3, size=30)
        acc = accuracy_under_tile_loss(fdsp, x, y, 1.0)
        assert acc <= 0.7  # one class's base rate, not real accuracy

    def test_validation(self):
        fdsp = make_fdsp()
        with pytest.raises(ValueError):
            accuracy_under_tile_loss(fdsp, np.zeros((1, 3, 24, 24), np.float32), np.zeros(1, int), 1.5)


class TestBatchPartitioning:
    def test_latency_equals_single_device(self):
        """§3.1: batch partitioning does not reduce per-image latency."""
        spec = get_spec("vgg16")
        one = batch_partition_metrics(spec, 1)
        eight = batch_partition_metrics(spec, 8)
        assert eight.per_image_latency_s == pytest.approx(one.per_image_latency_s)

    def test_throughput_scales_until_link_bound(self):
        spec = get_spec("vgg16")
        t1 = batch_partition_metrics(spec, 1).throughput_images_per_s
        t4 = batch_partition_metrics(spec, 4).throughput_images_per_s
        assert t4 > t1 * 2

    def test_link_becomes_bottleneck(self):
        """With enough devices the shared link caps throughput."""
        spec = get_spec("vgg16")
        t32 = batch_partition_metrics(spec, 32).throughput_images_per_s
        t64 = batch_partition_metrics(spec, 64).throughput_images_per_s
        assert t64 == pytest.approx(t32)

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_partition_metrics(get_spec("vgg16"), 0)
