"""Tests for the later nn additions: global max pool, upsampling, misc."""

import numpy as np
import pytest

import repro.nn as nn
import repro.nn.functional as F
from repro.nn import Tensor

from gradcheck import check_grad

RNG = np.random.default_rng(53)


class TestGlobalMaxPool1d:
    def test_values(self):
        x = Tensor(np.array([[[1.0, 5.0, 2.0], [7.0, 0.0, -1.0]]]))
        out = F.global_max_pool1d(x)
        np.testing.assert_allclose(out.data, [[5.0, 7.0]])

    def test_grad_routes_to_max(self):
        x = Tensor(np.array([[[1.0, 5.0, 2.0]]]), requires_grad=True)
        F.global_max_pool1d(x).sum().backward()
        np.testing.assert_allclose(x.grad, [[[0.0, 1.0, 0.0]]])

    def test_gradcheck(self):
        x = RNG.normal(size=(2, 3, 8))
        # Perturb away from ties.
        x += np.arange(8) * 0.01
        check_grad(lambda t: F.global_max_pool1d(t).sum(), x)

    def test_module(self):
        out = nn.GlobalMaxPool1d()(Tensor(RNG.normal(size=(4, 6, 20))))
        assert out.shape == (4, 6)


class TestNearestUpsample2d:
    def test_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = F.nearest_upsample2d(x, 2)
        expected = np.array([[[[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]]]], dtype=float)
        np.testing.assert_allclose(out.data, expected)

    def test_scale_one_identity(self):
        x = Tensor(RNG.normal(size=(1, 2, 3, 3)))
        assert F.nearest_upsample2d(x, 1) is x

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            F.nearest_upsample2d(Tensor(np.zeros((1, 1, 2, 2))), 0)

    def test_grad_sums_block(self):
        check_grad(lambda t: (F.nearest_upsample2d(t, 2) ** 2).sum(), RNG.normal(size=(1, 2, 3, 3)))

    def test_upsample_downsample_roundtrip(self):
        """avg_pool(upsample(x)) == x for nearest-neighbour upsampling."""
        x = Tensor(RNG.normal(size=(1, 2, 4, 4)))
        up = F.nearest_upsample2d(x, 3)
        down = F.avg_pool2d(up, 3)
        np.testing.assert_allclose(down.data, x.data, atol=1e-6)


class TestConv1dStride:
    def test_strided_shapes(self):
        conv = nn.Conv1d(2, 4, 3, stride=2, padding=1)
        out = conv(Tensor(RNG.normal(size=(1, 2, 16))))
        assert out.shape == (1, 4, 8)

    def test_strided_grad(self):
        w = Tensor(RNG.normal(size=(2, 2, 3)))
        check_grad(lambda t: F.conv1d(t, w, stride=2, padding=1).sum(), RNG.normal(size=(1, 2, 12)))


class TestFDSPWithResidual:
    def test_interior_exact_for_residual_stack(self):
        """FDSP's interior contract must hold through shortcut blocks."""
        from repro.models.blocks import LayerBlock, ResidualBlock
        from repro.partition import TileGrid, fdsp_forward, interior_mask, receptive_border

        stack = nn.Sequential(
            LayerBlock(3, 8, 3, rng=np.random.default_rng(0)),
            ResidualBlock(8, 8, rng=np.random.default_rng(1)),
        )
        stack.eval()
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        full = stack(Tensor(x)).data
        parted = fdsp_forward(stack, x, TileGrid(2, 2)).data
        border = receptive_border(stack)
        mask = interior_mask(TileGrid(2, 2), full.shape[2:], border)
        assert mask.any()
        np.testing.assert_allclose(parted[:, :, mask], full[:, :, mask], atol=1e-4)


class TestConvLinearity:
    def test_conv_is_linear_in_input(self):
        """conv(a + b) == conv(a) + conv(b) (bias-free) — a property the
        im2col implementation must preserve exactly."""
        w = Tensor(RNG.normal(size=(4, 3, 3, 3)).astype(np.float32))
        a = RNG.normal(size=(1, 3, 10, 10)).astype(np.float32)
        b = RNG.normal(size=(1, 3, 10, 10)).astype(np.float32)
        lhs = F.conv2d(Tensor(a + b), w, padding=1).data
        rhs = F.conv2d(Tensor(a), w, padding=1).data + F.conv2d(Tensor(b), w, padding=1).data
        np.testing.assert_allclose(lhs, rhs, atol=1e-4)

    def test_conv_translation_equivariance(self):
        """Shifting the input shifts the output (away from borders)."""
        w = Tensor(RNG.normal(size=(2, 1, 3, 3)).astype(np.float32))
        x = RNG.normal(size=(1, 1, 12, 12)).astype(np.float32)
        shifted = np.roll(x, shift=2, axis=3)
        out = F.conv2d(Tensor(x), w, padding=1).data
        out_shifted = F.conv2d(Tensor(shifted), w, padding=1).data
        np.testing.assert_allclose(out_shifted[:, :, :, 5:9], np.roll(out, 2, axis=3)[:, :, :, 5:9], atol=1e-4)
