"""Tests for full-architecture models at reduced width (paper topology)."""

import numpy as np
import pytest

from repro.models import create_model, resnet, vgg16
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid

RNG = np.random.default_rng(79)


class TestFullVGG16:
    @pytest.fixture(scope="class")
    def model(self):
        # Full 13-block topology at 1/16 width, 64px input: runnable on CPU.
        return vgg16(num_classes=10, input_size=64, width_mult=1 / 16, seed=0).eval()

    def test_structure(self, model):
        assert model.num_blocks() == 13
        assert model.separable_prefix == 7
        assert model.separable_spatial_reduction() == 8  # pools at blocks 2,4,7

    def test_forward(self, model):
        out = model(Tensor(RNG.normal(size=(1, 3, 64, 64)).astype(np.float32)))
        assert out.shape == (1, 10)

    def test_fdsp_partition_paper_prefix(self, model):
        """The paper's 7-block prefix partitions cleanly at 2x2 on 64px
        (tile 32 divisible by reduction 8)."""
        fdsp = FDSPModel(model, TileGrid(2, 2))
        fdsp.eval()
        out = fdsp(Tensor(RNG.normal(size=(1, 3, 64, 64)).astype(np.float32)))
        assert out.shape == (1, 10)


class TestFullResNet34:
    @pytest.fixture(scope="class")
    def model(self):
        return resnet(stage_blocks=[3, 4, 6, 3], num_classes=10, input_size=64,
                      width_mult=1 / 16, separable_prefix=12, seed=0).eval()

    def test_structure(self, model):
        assert model.num_blocks() == 17  # stem + 16 residual blocks
        assert model.separable_prefix == 12

    def test_forward(self, model):
        out = model(Tensor(RNG.normal(size=(1, 3, 64, 64)).astype(np.float32)))
        assert out.shape == (1, 10)

    def test_split_equals_whole(self, model):
        x = Tensor(RNG.normal(size=(1, 3, 64, 64)).astype(np.float32))
        np.testing.assert_allclose(model(x).data, model.forward_split(x).data, atol=1e-4)


class TestRegistryFullModels:
    def test_resnet18_builder(self):
        model = create_model("resnet18", num_classes=5, input_size=64, width_mult=1 / 16)
        out = model.eval()(Tensor(RNG.normal(size=(1, 3, 64, 64)).astype(np.float32)))
        assert out.shape == (1, 5)
        assert model.separable_prefix == 6
