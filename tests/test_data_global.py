"""Tests for the global-structure negative-control dataset."""

import numpy as np
import pytest

from repro.data import make_global_structure


class TestGlobalStructure:
    def test_shapes_and_balance(self):
        d = make_global_structure(num_samples=100, image_size=32, seed=1)
        assert d.images.shape == (100, 3, 32, 32)
        assert d.num_classes == 2
        # Roughly balanced labels.
        assert 0.3 < d.labels.mean() < 0.7

    def test_deterministic(self):
        a = make_global_structure(num_samples=10, seed=4)
        b = make_global_structure(num_samples=10, seed=4)
        np.testing.assert_array_equal(a.images, b.images)

    def test_blob_geometry_encodes_label(self):
        """Class 1 images have bright mass in both halves; class 0 in one."""
        d = make_global_structure(num_samples=60, image_size=32, noise=0.05, seed=2)
        half = 16
        top_mass = d.images[:, :, :half].max(axis=(1, 2, 3))
        bottom_mass = d.images[:, :, half:].max(axis=(1, 2, 3))
        both_halves = (top_mass > 1.0) & (bottom_mass > 1.0)
        # Opposite-half samples light up both halves; same-half mostly don't.
        assert both_halves[d.labels == 1].mean() > 0.9
        assert both_halves[d.labels == 0].mean() < 0.6

    def test_patch_statistics_uninformative(self):
        """No single small patch separates the classes (the point of the
        dataset): patch intensity histograms match across labels."""
        d = make_global_structure(num_samples=200, image_size=32, noise=0.05, seed=3)
        patch = d.images[:, 0, :8, :8].mean(axis=(1, 2))
        m0, m1 = patch[d.labels == 0].mean(), patch[d.labels == 1].mean()
        s = patch.std() + 1e-9
        assert abs(m0 - m1) / s < 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            make_global_structure(image_size=16, blob_size=10)
