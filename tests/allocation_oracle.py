"""Exact allocation oracle for scheduler tests.

``brute_force_allocation`` used to live in ``repro.runtime.scheduler`` with
a "tests only" docstring; it is a test fixture, not runtime API, so it
lives with the tests now.  It exhaustively searches every split of
``num_tiles`` over the nodes and returns the min-max-cost one — the ground
truth the greedy Algorithm 3 implementation is checked against.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

__all__ = ["brute_force_allocation"]


def brute_force_allocation(num_tiles: int, rates) -> np.ndarray:
    """Exact min-max allocation by exhaustive search (tiny instances only)."""
    s = np.asarray(rates, dtype=float)
    k = len(s)
    if num_tiles > 12 or k > 4:
        raise ValueError("brute force limited to tiny instances")
    best, best_cost = None, math.inf
    for combo in itertools.product(range(num_tiles + 1), repeat=k):
        if sum(combo) != num_tiles:
            continue
        cost = max((c / s[i]) if s[i] > 0 else (math.inf if c else 0.0) for i, c in enumerate(combo))
        if cost < best_cost:
            best, best_cost = np.array(combo), cost
    assert best is not None
    return best
