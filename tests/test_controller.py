"""The shared CentralController: differential backend conformance, the
allocation-policy registry, credit-mode algebra, and state-machine guards.

The headline test drives the *same* handcrafted event trace through two
controllers built by the two backends' real ``build_controller()`` factories
(DES profile vs process profile) and asserts the command streams and
decision journals are identical — the refactor's core claim that both
runtimes now make the same scheduling decisions.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import vgg_mini
from repro.partition import TileGrid
from repro.profiling import RASPBERRY_PI_3B
from repro.runtime import (
    LOCAL_WORKER,
    ADCNNConfig,
    ADCNNSystem,
    ADCNNWorkload,
    CentralController,
    ControllerConfig,
    ProcessCluster,
    ProcessClusterConfig,
    SchedulingError,
    available_policies,
    get_policy,
    replay,
    resolve_policy,
)
from repro.runtime.controller import (
    ArmDeadline,
    BatchDelivered,
    DeadlineFired,
    ImageReady,
    MergeCompleted,
    Redispatch,
    ResultReceived,
    SendBatch,
    TriggerMerge,
    WorkerDied,
    WorkerRevived,
    arrival_span_credits,
    busy_span_credits,
)
from repro.runtime.policies import AllocationRequest, static_even
from repro.simulator import SimNode

ALIVE4 = (True, True, True, True)
TILES = 16


def neutral_workload() -> ADCNNWorkload:
    """Zero-cost workload: no nominal compute, no result bits, no storage
    pressure — so the DES deadline degenerates to ``dispatch_done + T_L``,
    exactly the process backend's."""
    return ADCNNWorkload(
        name="conformance",
        num_tiles=TILES,
        tile_input_bits=0.0,
        tile_output_bits=0.0,
        tile_macs=0.0,
        rest_macs=1.0,
    )


def des_controller() -> CentralController:
    system = ADCNNSystem(
        neutral_workload(),
        [SimNode(f"n{i}", RASPBERRY_PI_3B) for i in range(4)],
        SimNode("c", RASPBERRY_PI_3B),
        config=ADCNNConfig(
            t_limit=1.0, deadline_slack=1.0, redispatch=True, probe_interval=3
        ),
    )
    return system.build_controller()


def process_controller() -> CentralController:
    cluster = ProcessCluster(
        vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval(),
        TileGrid(2, 2),
        config=ProcessClusterConfig(
            num_workers=4, t_limit=1.0, redispatch=True, probe_interval=3
        ),
    )
    return cluster.build_controller()


def conformance_trace():
    """Three pipelined images exercising every controller phase: full
    completion, a deadline miss with a late straggler, a mid-image node
    death with re-dispatch, a revival, and a post-recovery dispatch.

    ``compute_finish=99.0`` / ``busy_seconds=999.0`` push both credit modes
    onto the window clamp, where each reduces to the paper's raw
    within-window count — so the two backend profiles must agree bit-for-bit.
    """
    ev = []
    # image 0 — even first split, completes before its deadline
    ev.append(ImageReady(0.00, 0, TILES, ALIVE4))
    ev += [BatchDelivered(0.10, 0, n) for n in range(4)]
    # image 1 — dispatched while image 0 is still collecting (Figure 9)
    ev.append(ImageReady(0.15, 1, TILES, ALIVE4))
    ev += [BatchDelivered(0.25, 1, n) for n in range(4)]
    for i in range(TILES):
        ev.append(
            ResultReceived(0.30 + 0.04 * i, 0, i % 4, compute_finish=99.0, busy_seconds=999.0)
        )
    ev.append(MergeCompleted(0.95, 0))
    # image 2 — will lose node 2 mid-collection
    ev.append(ImageReady(1.00, 2, TILES, ALIVE4))
    ev += [BatchDelivered(1.05, 2, n) for n in range(4)]
    # image 1: nodes 0/1 deliver fully, node 2 partially, node 3 misses
    partial = [0] * 4 + [1] * 4 + [2] * 2
    for i, node in enumerate(partial):
        ev.append(
            ResultReceived(1.06 + 0.01 * i, 1, node, compute_finish=99.0, busy_seconds=999.0)
        )
    ev.append(DeadlineFired(1.25, 1))  # 0.25 + T_L
    ev.append(ResultReceived(1.26, 1, 3, compute_finish=99.0, busy_seconds=999.0))  # late
    ev.append(MergeCompleted(1.30, 1))
    # node 2 dies owning 2 unanswered tiles of image 2
    ev.append(WorkerDied(1.50, 2, (True, True, False, True), ((2, 2),)))
    ev += [BatchDelivered(1.55, 2, n, redispatched=True) for n in (0, 1, 3)]
    remaining = [0] * 6 + [1] * 5 + [3] * 5
    for i, node in enumerate(remaining):
        ev.append(
            ResultReceived(1.60 + 0.025 * i, 2, node, compute_finish=99.0, busy_seconds=999.0)
        )
    ev.append(MergeCompleted(2.02, 2))
    ev.append(DeadlineFired(2.05, 2))  # fires after retirement: stale no-op
    ev.append(WorkerRevived(2.20, 2))
    # image 3 — dispatch over the recovered cluster (probe donation may fire)
    ev.append(ImageReady(2.30, 3, TILES, ALIVE4))
    return ev


class TestBackendConformance:
    def test_identical_commands_and_decisions(self):
        des, proc = des_controller(), process_controller()
        trace = conformance_trace()
        cmds_des = replay(des, trace)
        cmds_proc = replay(proc, trace)
        assert cmds_des == cmds_proc
        assert des.decisions == proc.decisions
        # and the structural highlights actually happened:
        first = [c for c in cmds_des if isinstance(c, SendBatch) and c.image_id == 0]
        assert [c.count for c in first] == [4, 4, 4, 4]  # §7.3 even first split
        triggers = {c.image_id: c for c in cmds_des if isinstance(c, TriggerMerge)}
        assert not triggers[0].by_deadline and triggers[0].zero_filled == 0
        assert triggers[1].by_deadline and triggers[1].zero_filled == 6
        redispatched = [c for c in cmds_des if isinstance(c, Redispatch)]
        assert sum(c.count for c in redispatched) == 2
        assert all(c.node != LOCAL_WORKER for c in redispatched)  # survivors took it

    def test_profiles_differ_only_where_documented(self):
        des_cfg = des_controller().config
        proc_cfg = process_controller().config
        assert des_cfg.credit_mode == "arrival-span"
        assert proc_cfg.credit_mode == "busy-span"
        assert (des_cfg.mask_dead, des_cfg.local_fallback) == (False, False)
        assert (proc_cfg.mask_dead, proc_cfg.local_fallback) == (True, True)

    def test_replay_is_deterministic(self):
        a, b = des_controller(), des_controller()
        trace = conformance_trace()
        assert replay(a, trace) == replay(b, trace)
        assert a.decisions == b.decisions


# --------------------------------------------------------------- properties
@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=5),
    tiles_per_node=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_allocation_and_probe_donation_conserve_tiles(num_nodes, tiles_per_node, data):
    """After an arbitrary first image skews the rates, the next dispatch
    still allocates exactly ``num_tiles`` tiles and probe donation never
    drains any batch below one tile."""
    num_tiles = num_nodes * tiles_per_node
    alive = (True,) * num_nodes
    ctl = CentralController(
        num_nodes,
        ControllerConfig(window=2, t_limit=1.0, probe_interval=1),
    )
    cmds = ctl.handle(ImageReady(0.0, 0, num_tiles, alive))
    for cmd in [c for c in cmds if isinstance(c, SendBatch)]:
        ctl.handle(BatchDelivered(0.1, 0, cmd.node))
    counts = [
        data.draw(st.integers(min_value=0, max_value=tiles_per_node), label=f"n{k}")
        for k in range(num_nodes)
    ]
    t = 0.2
    for node, count in enumerate(counts):
        for _ in range(count):
            ctl.handle(ResultReceived(t, 0, node, busy_seconds=0.5))
            t += 0.01
    ctl.handle(DeadlineFired(1.1, 0))
    ctl.handle(MergeCompleted(1.2, 0))

    batches = [c for c in ctl.handle(ImageReady(2.0, 1, num_tiles, alive)) if isinstance(c, SendBatch)]
    assert sum(c.count for c in batches) == num_tiles  # conservation
    assert all(c.count >= 1 for c in batches)  # no donor drained to zero
    allocation = ctl.allocation_view(1)
    assert int(allocation.sum()) == num_tiles
    assert (allocation >= 0).all()
    probes = [c for c in batches if c.probe]
    assert all(c.count == 1 for c in probes)  # a probe is a single tile


# ------------------------------------------------------------ credit algebra
class TestCreditModes:
    def test_arrival_span_normalizes_by_busy_span(self):
        received = np.array([4, 0])
        node_start = np.array([0.0, math.nan])
        last_finish = np.array([0.5, math.nan])
        credits = arrival_span_credits(received, node_start, last_finish, 1.0, 16)
        assert credits[0] == pytest.approx(8.0)  # finished in half the window
        assert credits[1] == 0.0

    def test_arrival_span_straggler_gets_raw_count(self):
        credits = arrival_span_credits(
            np.array([3]), np.array([math.nan]), np.array([math.nan]), 1.0, 16
        )
        assert credits[0] == 3.0  # no usable span: the paper's plain count

    def test_arrival_span_caps_at_tile_total(self):
        credits = arrival_span_credits(
            np.array([4]), np.array([0.0]), np.array([0.01]), 1.0, 16
        )
        assert credits[0] == 16.0

    def test_busy_span_full_batch_normalizes(self):
        credits = busy_span_credits(np.array([4]), np.array([4]), np.array([0.5]), 1.0, 16)
        assert credits[0] == pytest.approx(8.0)

    def test_busy_span_partial_batch_raw_count(self):
        credits = busy_span_credits(np.array([2]), np.array([4]), np.array([0.5]), 1.0, 16)
        assert credits[0] == 2.0


# ------------------------------------------------------------ policy registry
class TestPolicies:
    def test_builtins_registered(self):
        assert {"greedy_min_max", "static_even"} <= set(available_policies())

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown allocation policy"):
            get_policy("simulated_annealing")

    def test_resolve_accepts_callable(self):
        assert resolve_policy(static_even) is static_even
        assert resolve_policy("static_even") is static_even

    def test_static_even_round_robin(self):
        req = AllocationRequest(
            num_tiles=7,
            rates=np.array([1.0, 1.0, 1.0]),
            alive=np.array([True, True, True]),
        )
        assert static_even(req).tolist() == [3, 2, 2]

    def test_static_even_skips_dead_and_decayed(self):
        req = AllocationRequest(
            num_tiles=4,
            rates=np.array([1.0, 1.0, 0.0]),
            alive=np.array([True, False, True]),
        )
        assert static_even(req).tolist() == [4, 0, 0]

    def test_static_even_respects_storage_cap(self):
        req = AllocationRequest(
            num_tiles=5,
            rates=np.array([1.0, 1.0]),
            alive=np.array([True, True]),
            tile_bits=1.0,
            storage_bits=np.array([2.0, math.inf]),
        )
        assert static_even(req).tolist() == [2, 3]

    def test_static_even_no_eligible_node_raises(self):
        req = AllocationRequest(
            num_tiles=2, rates=np.array([0.0, 0.0]), alive=np.array([True, True])
        )
        with pytest.raises(SchedulingError):
            static_even(req)

    def test_des_run_with_static_even_policy(self):
        system = ADCNNSystem(
            neutral_workload(),
            [SimNode(f"n{i}", RASPBERRY_PI_3B) for i in range(4)],
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(t_limit=1.0, deadline_slack=1.0, policy="static_even"),
        )
        records = system.run(4)
        for rec in records:
            assert rec.allocation.sum() == TILES
            assert rec.allocation.max() - rec.allocation.min() <= 1  # rate-blind


# -------------------------------------------------------- state-machine guards
class TestControllerGuards:
    def test_window_full_raises(self):
        ctl = CentralController(2, ControllerConfig(window=1, t_limit=1.0))
        ctl.handle(ImageReady(0.0, 0, 4, (True, True)))
        with pytest.raises(RuntimeError, match="window is full"):
            ctl.handle(ImageReady(0.1, 1, 4, (True, True)))
        ctl.handle(MergeCompleted(0.2, 0))
        assert ctl.can_dispatch  # the slot frees on merge completion

    def test_duplicate_image_id_raises(self):
        ctl = CentralController(2, ControllerConfig(window=4, t_limit=1.0))
        ctl.handle(ImageReady(0.0, 7, 4, (True, True)))
        with pytest.raises(ValueError, match="already in flight"):
            ctl.handle(ImageReady(0.1, 7, 4, (True, True)))

    def test_alive_vector_length_checked(self):
        ctl = CentralController(3, ControllerConfig(t_limit=1.0))
        with pytest.raises(ValueError, match="one entry per node"):
            ctl.handle(ImageReady(0.0, 0, 4, (True, True)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(window=0)
        with pytest.raises(ValueError):
            ControllerConfig(credit_mode="exact")
        with pytest.raises(ValueError):
            ControllerConfig(probe_interval=-1)
        ctl = CentralController(2, ControllerConfig())
        with pytest.raises(ValueError):
            ctl.set_window(0)

    def test_invalid_policy_output_rejected(self):
        bad = ControllerConfig(policy=lambda req: np.zeros(2, dtype=int), t_limit=1.0)
        ctl = CentralController(2, bad)
        with pytest.raises(SchedulingError, match="allocated 0 tiles"):
            ctl.handle(ImageReady(0.0, 0, 4, (True, True)))

    def test_local_fallback_when_no_node_accepts(self):
        ctl = CentralController(
            2,
            ControllerConfig(t_limit=1.0, mask_dead=True, local_fallback=True),
        )
        cmds = ctl.handle(ImageReady(0.0, 0, 4, (False, False)))
        batches = [c for c in cmds if isinstance(c, SendBatch)]
        assert batches == [SendBatch(0, LOCAL_WORKER, 4)]
        deadlines = [c for c in cmds if isinstance(c, ArmDeadline)]
        assert deadlines == [ArmDeadline(0, 1.0)]  # arms immediately: no transfer
        assert ctl.allocation_view(0).tolist() == [0, 0]

    def test_deadline_trigger_and_late_result(self):
        ctl = CentralController(2, ControllerConfig(t_limit=1.0))
        ctl.handle(ImageReady(0.0, 0, 4, (True, True)))
        ctl.handle(BatchDelivered(0.1, 0, 0))
        ctl.handle(BatchDelivered(0.1, 0, 1))
        ctl.handle(ResultReceived(0.5, 0, 0))
        cmds = ctl.handle(DeadlineFired(1.1, 0))
        trigger = next(c for c in cmds if isinstance(c, TriggerMerge))
        assert trigger.by_deadline and trigger.zero_filled == 3
        assert trigger.received == (1, 0)
        assert ctl.handle(ResultReceived(1.2, 0, 1)) == []  # already zero-filled

    def test_redispatch_goes_local_without_survivors(self):
        ctl = CentralController(
            2,
            ControllerConfig(
                t_limit=1.0, redispatch=True, mask_dead=True, local_fallback=True
            ),
        )
        ctl.handle(ImageReady(0.0, 0, 4, (True, True)))
        for node in (0, 1):
            ctl.handle(BatchDelivered(0.1, 0, node))
        cmds = ctl.handle(WorkerDied(0.5, 0, (False, False), ((0, 2),)))
        assert cmds == [Redispatch(0, LOCAL_WORKER, 2)]

    def test_stale_events_are_ignored(self):
        ctl = CentralController(2, ControllerConfig(t_limit=1.0))
        assert ctl.handle(BatchDelivered(0.0, 99, 0)) == []
        assert ctl.handle(ResultReceived(0.0, 99, 0)) == []
        assert ctl.handle(DeadlineFired(0.0, 99)) == []
        assert ctl.handle(MergeCompleted(0.0, 99)) == []


# ------------------------------------------------- driver-facing satellites
class TestSystemGuards:
    def make_system(self, **cfg) -> ADCNNSystem:
        return ADCNNSystem(
            neutral_workload(),
            [SimNode(f"n{i}", RASPBERRY_PI_3B) for i in range(4)],
            cfg.pop("central", SimNode("c", RASPBERRY_PI_3B)),
            config=ADCNNConfig(t_limit=1.0, deadline_slack=1.0, **cfg),
        )

    def test_transferred_bits_before_run_raises(self):
        system = self.make_system()
        with pytest.raises(ValueError, match="no records"):
            system.total_transferred_bits()
        system.run(2)
        assert system.total_transferred_bits() >= 0.0

    def test_dead_central_node_cannot_stall_the_run(self):
        system = self.make_system(central=SimNode("c", RASPBERRY_PI_3B, fail_time=1e-6))
        records = system.run(3)
        assert len(records) == 3  # the stream still drains
        assert all(not math.isfinite(r.completion) for r in records)
        with pytest.raises(ValueError, match="no finite latencies"):
            system.mean_latency()
