"""Integration tests for the process-emulated edge cluster.

Conv nodes are real forked processes doing real NumPy inference; these
tests validate the Figure-8 protocol end to end: correctness vs local
execution, deadline zero-fill, node death, and load adaptation.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.compression import CompressionPipeline
from repro.models import vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid
from repro.runtime import ProcessCluster, ProcessClusterConfig, TileTask

RNG = np.random.default_rng(31)


def small_model():
    # Tiny and fast: 24x24 input, 6 channels.
    return vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()


class TestProtocol:
    def test_matches_local_fdsp_execution(self):
        """Distributed output must equal the local FDSP forward exactly."""
        model = small_model()
        grid = TileGrid(2, 2)
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        local = FDSPModel(model, grid)
        local.eval()
        expected = local(Tensor(x)).data
        with ProcessCluster(model, grid, config=ProcessClusterConfig(num_workers=2)) as cluster:
            outcome = cluster.infer(x)
        np.testing.assert_allclose(outcome.output, expected, atol=1e-5)
        assert outcome.zero_filled_tiles == []

    def test_compressed_path_matches_training_graph(self):
        """With the §4 pipeline on the wire, the distributed output must
        equal the Figure-7(b) graph (clip + quantize) computed locally."""
        model = small_model()
        grid = TileGrid(2, 2)
        clip = nn.ClippedReLU(0.0, 4.0)
        quant = nn.QuantizeSTE(bits=4, max_value=4.0)
        local = FDSPModel(model, grid, clipped_relu=clip, quantizer=quant)
        local.eval()
        pipeline = CompressionPipeline(lower=0.0, upper=4.0, bits=4)
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        expected = local(Tensor(x)).data
        with ProcessCluster(model, grid, pipeline=pipeline, config=ProcessClusterConfig(num_workers=2)) as cluster:
            outcome = cluster.infer(x)
        np.testing.assert_allclose(outcome.output, expected, atol=1e-4)

    def test_multiple_images_sequential(self):
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=2)) as cluster:
            for _ in range(3):
                out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
                assert out.output.shape == (1, 3)
                assert out.allocation.sum() == 4

    def test_allocation_covers_all_tiles(self):
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=3)) as cluster:
            out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            assert out.allocation.sum() == 4
            assert out.received_per_worker.sum() == 4


class TestFaultTolerance:
    def test_straggler_zero_filled(self):
        """A worker slowed past T_L loses its tiles to zero-fill, and the
        inference still completes with a sane output."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=1.0, delay_per_tile=(0.0, 5.0))
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
        assert len(out.zero_filled_tiles) > 0
        assert np.isfinite(out.output).all()

    def test_straggler_loses_future_share(self):
        """Algorithm 2: the slow worker's s_k decays after a missed deadline."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=1.0, delay_per_tile=(0.0, 5.0), gamma=0.9)
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            rates = cluster.worker_rates
        assert rates[1] < rates[0]

    def test_killed_worker_inference_completes(self):
        """Fail-stop a Conv node: supervision routes around it at the next
        dispatch, so the inference completes with nothing zero-filled."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=2.0)
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))  # warm
            cluster.kill_worker(1)
            out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
        assert out.zero_filled_tiles == []
        assert out.allocation[1] == 0 and out.allocation[0] == 4
        assert np.isfinite(out.output).all()


class TestRateCredits:
    """The n_k computation shared conceptually with the DES backend."""

    def test_full_delivery_credits_rate(self):
        from repro.runtime.process_backend import _rate_credits

        received = np.array([4, 4])
        alloc = np.array([4, 4])
        busy = np.array([0.5, 1.0])  # worker 0 twice as fast
        credits = _rate_credits(received, alloc, busy, window=1.0, num_tiles=8)
        assert credits[0] == pytest.approx(2 * credits[1])

    def test_missed_deadline_raw_count(self):
        from repro.runtime.process_backend import _rate_credits

        received = np.array([4, 1])
        alloc = np.array([4, 4])
        busy = np.array([0.5, 1.0])
        credits = _rate_credits(received, alloc, busy, window=1.0, num_tiles=8)
        assert credits[1] == 1.0  # paper rule: count within the window

    def test_zero_received_zero_credit(self):
        from repro.runtime.process_backend import _rate_credits

        credits = _rate_credits(np.array([3, 0]), np.array([3, 3]), np.array([0.3, 0.0]), 1.0, 6)
        assert credits[1] == 0.0

    def test_credit_capped_at_tiles(self):
        from repro.runtime.process_backend import _rate_credits

        credits = _rate_credits(np.array([4]), np.array([4]), np.array([1e-6]), 10.0, 8)
        assert credits[0] == 8.0


class TestLifecycleAndValidation:
    def test_infer_before_start_raises(self):
        cluster = ProcessCluster(small_model(), TileGrid(2, 2))
        with pytest.raises(RuntimeError):
            cluster.infer(np.zeros((1, 3, 24, 24), dtype=np.float32))

    def test_double_start_raises(self):
        cluster = ProcessCluster(small_model(), TileGrid(2, 2))
        try:
            cluster.start()
            with pytest.raises(RuntimeError):
                cluster.start()
        finally:
            cluster.stop()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProcessClusterConfig(num_workers=0)
        with pytest.raises(ValueError):
            ProcessClusterConfig(t_limit=0.0)
        with pytest.raises(ValueError):
            ProcessClusterConfig(num_workers=2, delay_per_tile=(0.1,))

    def test_tile_task_validation(self):
        with pytest.raises(ValueError):
            TileTask(-1, 0, np.zeros((1, 1, 2, 2)))

    def test_unbatched_input_accepted(self):
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=1)) as cluster:
            out = cluster.infer(RNG.normal(size=(3, 24, 24)).astype(np.float32))
        assert out.output.shape == (1, 3)
