"""Integration tests for the process-emulated edge cluster.

Conv nodes are real forked processes doing real NumPy inference; these
tests validate the Figure-8 protocol end to end: correctness vs local
execution, deadline zero-fill, node death, and load adaptation.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.compression import CompressionPipeline
from repro.models import vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid
from repro.runtime import ProcessCluster, ProcessClusterConfig, TileTask

RNG = np.random.default_rng(31)


def small_model():
    # Tiny and fast: 24x24 input, 6 channels.
    return vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()


class TestProtocol:
    def test_matches_local_fdsp_execution(self):
        """Distributed output must equal the local FDSP forward exactly."""
        model = small_model()
        grid = TileGrid(2, 2)
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        local = FDSPModel(model, grid)
        local.eval()
        expected = local(Tensor(x)).data
        with ProcessCluster(model, grid, config=ProcessClusterConfig(num_workers=2)) as cluster:
            outcome = cluster.infer(x)
        np.testing.assert_allclose(outcome.output, expected, atol=1e-5)
        assert outcome.zero_filled_tiles == []

    def test_compressed_path_matches_training_graph(self):
        """With the §4 pipeline on the wire, the distributed output must
        equal the Figure-7(b) graph (clip + quantize) computed locally."""
        model = small_model()
        grid = TileGrid(2, 2)
        clip = nn.ClippedReLU(0.0, 4.0)
        quant = nn.QuantizeSTE(bits=4, max_value=4.0)
        local = FDSPModel(model, grid, clipped_relu=clip, quantizer=quant)
        local.eval()
        pipeline = CompressionPipeline(lower=0.0, upper=4.0, bits=4)
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        expected = local(Tensor(x)).data
        with ProcessCluster(model, grid, pipeline=pipeline, config=ProcessClusterConfig(num_workers=2)) as cluster:
            outcome = cluster.infer(x)
        np.testing.assert_allclose(outcome.output, expected, atol=1e-4)

    def test_multiple_images_sequential(self):
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=2)) as cluster:
            for _ in range(3):
                out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
                assert out.output.shape == (1, 3)
                assert out.allocation.sum() == 4

    def test_allocation_covers_all_tiles(self):
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=3)) as cluster:
            out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            assert out.allocation.sum() == 4
            assert out.received_per_worker.sum() == 4


class TestFaultTolerance:
    def test_straggler_zero_filled(self):
        """A worker slowed past T_L loses its tiles to zero-fill, and the
        inference still completes with a sane output."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=1.0, delay_per_tile=(0.0, 5.0))
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
        assert len(out.zero_filled_tiles) > 0
        assert np.isfinite(out.output).all()

    def test_straggler_loses_future_share(self):
        """Algorithm 2: the slow worker's s_k decays after a missed deadline."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=1.0, delay_per_tile=(0.0, 5.0), gamma=0.9)
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            rates = cluster.worker_rates
        assert rates[1] < rates[0]

    def test_killed_worker_inference_completes(self):
        """Fail-stop a Conv node: supervision routes around it at the next
        dispatch, so the inference completes with nothing zero-filled."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=2.0)
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))  # warm
            cluster.kill_worker(1)
            out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
        assert out.zero_filled_tiles == []
        assert out.allocation[1] == 0 and out.allocation[0] == 4
        assert np.isfinite(out.output).all()


class TestRateCredits:
    """The n_k computation shared conceptually with the DES backend."""

    def test_full_delivery_credits_rate(self):
        from repro.runtime.process_backend import _rate_credits

        received = np.array([4, 4])
        alloc = np.array([4, 4])
        busy = np.array([0.5, 1.0])  # worker 0 twice as fast
        credits = _rate_credits(received, alloc, busy, window=1.0, num_tiles=8)
        assert credits[0] == pytest.approx(2 * credits[1])

    def test_missed_deadline_raw_count(self):
        from repro.runtime.process_backend import _rate_credits

        received = np.array([4, 1])
        alloc = np.array([4, 4])
        busy = np.array([0.5, 1.0])
        credits = _rate_credits(received, alloc, busy, window=1.0, num_tiles=8)
        assert credits[1] == 1.0  # paper rule: count within the window

    def test_zero_received_zero_credit(self):
        from repro.runtime.process_backend import _rate_credits

        credits = _rate_credits(np.array([3, 0]), np.array([3, 3]), np.array([0.3, 0.0]), 1.0, 6)
        assert credits[1] == 0.0

    def test_credit_capped_at_tiles(self):
        from repro.runtime.process_backend import _rate_credits

        credits = _rate_credits(np.array([4]), np.array([4]), np.array([1e-6]), 10.0, 8)
        assert credits[0] == 8.0


class TestLifecycleAndValidation:
    def test_infer_before_start_raises(self):
        cluster = ProcessCluster(small_model(), TileGrid(2, 2))
        with pytest.raises(RuntimeError):
            cluster.infer(np.zeros((1, 3, 24, 24), dtype=np.float32))

    def test_double_start_raises(self):
        cluster = ProcessCluster(small_model(), TileGrid(2, 2))
        try:
            cluster.start()
            with pytest.raises(RuntimeError):
                cluster.start()
        finally:
            cluster.stop()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProcessClusterConfig(num_workers=0)
        with pytest.raises(ValueError):
            ProcessClusterConfig(t_limit=0.0)
        with pytest.raises(ValueError):
            ProcessClusterConfig(num_workers=2, delay_per_tile=(0.1,))

    def test_tile_task_validation(self):
        with pytest.raises(ValueError):
            TileTask(-1, 0, np.zeros((1, 1, 2, 2)))

    def test_unbatched_input_accepted(self):
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=1)) as cluster:
            out = cluster.infer(RNG.normal(size=(3, 24, 24)).astype(np.float32))
        assert out.output.shape == (1, 3)


class TestWorkerCoalescing:
    """The worker's same-image batching, driven directly in a thread.

    ``_worker_loop`` only needs the queue get/put API, so a ``queue.Queue``
    stands in for the mp queues and the whole protocol runs in-process.
    """

    @staticmethod
    def _run_worker(model, tasks, pipeline=None, delay=0.0):
        import queue
        import threading

        from repro.runtime.messages import Shutdown
        from repro.runtime.process_backend import _worker_loop

        tq, rq = queue.Queue(), queue.Queue()
        for t in tasks:
            tq.put(t)
        tq.put(Shutdown())
        sep = model.separable_part()
        th = threading.Thread(
            target=_worker_loop, args=(0, sep, pipeline, tq, rq, delay), daemon=True
        )
        th.start()
        th.join(timeout=30)
        assert not th.is_alive()
        results = []
        while True:
            try:
                results.append(rq.get_nowait())
            except queue.Empty:
                break
        return results

    def test_coalesced_batch_matches_per_tile_reference(self):
        """One stacked forward over the drained batch == per-tile forwards."""
        from repro.partition.geometry import split_array

        model = small_model()
        grid = TileGrid(2, 2)
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        tiles = split_array(x, grid)
        tasks = [TileTask(image_id=0, tile_id=i, tile=t) for i, t in enumerate(tiles)]
        results = self._run_worker(model, tasks)
        assert [r.tile_id for r in results] == [0, 1, 2, 3]
        sep = model.separable_part()
        sep.eval()
        with nn.no_grad():
            for res, tile in zip(results, tiles):
                np.testing.assert_array_equal(res.payload, sep(Tensor(tile)).data)

    def test_coalesced_spans_tile_the_batch_envelope(self):
        """Telescoped per-tile spans are contiguous, sum to the measured
        wall envelope, and the emulated delay scales with the batch size."""
        from repro.partition.geometry import split_array

        model = small_model()
        grid = TileGrid(2, 2)
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        tiles = split_array(x, grid)
        tasks = [TileTask(image_id=0, tile_id=i, tile=t) for i, t in enumerate(tiles)]
        delay = 0.01
        results = self._run_worker(model, tasks, delay=delay)
        assert len(results) == 4
        for res in results:
            assert res.compute_seconds == pytest.approx(res.t_end - res.t_start)
            assert res.compute_seconds > 0
        for prev, nxt in zip(results, results[1:]):
            assert nxt.t_start == prev.t_end  # exact: span_start carries over
        envelope = results[-1].t_end - results[0].t_start
        assert sum(r.compute_seconds for r in results) == pytest.approx(envelope, abs=1e-9)
        assert envelope >= 4 * delay  # one sleep covering the whole batch

    def test_mixed_image_queue_order_preserved(self):
        """A different-image task breaks the batch; nothing is reordered."""
        from repro.partition.geometry import split_array

        model = small_model()
        grid = TileGrid(2, 2)
        tiles = split_array(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32), grid)
        tasks = [
            TileTask(image_id=0, tile_id=0, tile=tiles[0]),
            TileTask(image_id=0, tile_id=1, tile=tiles[1]),
            TileTask(image_id=1, tile_id=2, tile=tiles[2]),
            TileTask(image_id=1, tile_id=3, tile=tiles[3]),
        ]
        results = self._run_worker(model, tasks)
        assert [(r.image_id, r.tile_id) for r in results] == [(0, 0), (0, 1), (1, 2), (1, 3)]
        sep = model.separable_part()
        sep.eval()
        with nn.no_grad():
            for res, tile in zip(results, tiles):
                np.testing.assert_array_equal(res.payload, sep(Tensor(tile)).data)

    def test_unattachable_slot_yields_dropped_marker(self):
        """A slot unlinked under the worker produces a counted marker, not
        a silent skip, and does not poison the rest of the batch."""
        from repro.partition.geometry import split_array
        from repro.runtime.shm_arena import ShmRef

        model = small_model()
        grid = TileGrid(2, 2)
        tiles = split_array(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32), grid)
        bogus = ShmRef(
            name="adcnn_test_unlinked_slot",
            nbytes=tiles[1].nbytes,
            kind="raw",
            shape=tiles[1].shape,
            dtype="float32",
        )
        tasks = [
            TileTask(image_id=0, tile_id=0, tile=tiles[0]),
            TileTask(image_id=0, tile_id=1, slot=bogus),
        ]
        results = self._run_worker(model, tasks)
        by_id = {r.tile_id: r for r in results}
        assert by_id[1].dropped and by_id[1].payload is None
        assert not by_id[0].dropped
        sep = model.separable_part()
        sep.eval()
        with nn.no_grad():
            np.testing.assert_array_equal(by_id[0].payload, sep(Tensor(tiles[0])).data)

    def test_sweep_counts_dropped_results(self):
        """The collect loop counts dropped markers and leaves the tile
        unanswered (no entry lands in any image's results)."""
        import queue

        from repro.runtime.messages import TileResult
        from repro.telemetry import TelemetryRecorder

        tel = TelemetryRecorder()
        cluster = ProcessCluster(small_model(), TileGrid(2, 2), telemetry=tel)
        rq = queue.Queue()
        rq.put(TileResult(image_id=0, tile_id=0, payload=None, worker=0, dropped=True))
        cluster._result_queues.append(rq)
        assert cluster._sweep_results({}) is True
        assert tel.metrics.counter_total("adcnn_worker_dropped_tasks_total") == 1.0
