"""Tests for optimizers and loss functions."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Parameter, Tensor
from repro.nn.losses import bce_with_logits, cross_entropy, mse_loss, pixel_cross_entropy, yolo_loss
from repro.nn.optim import SGD, Adam, StepLR

RNG = np.random.default_rng(3)


def quadratic_params():
    """A single parameter with loss ||p - target||^2."""
    p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
    target = np.array([1.0, 2.0], dtype=np.float32)
    return p, target


def loss_of(p, target):
    diff = p - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p, target = quadratic_params()
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(100):
            opt.zero_grad()
            loss_of(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_momentum_faster_than_plain(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p, target = quadratic_params()
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(20):
                opt.zero_grad()
                loss_of(p, target).backward()
                opt.step()
            losses[momentum] = float(loss_of(p, target).data)
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero data gradient; only decay acts
        opt.step()
        assert abs(p.data[0]) < 10.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # must not crash
        np.testing.assert_allclose(p.data, [1.0])

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p, target = quadratic_params()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            loss_of(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_bias_correction_first_step(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * 2.0).sum().backward()
        opt.step()
        # After bias correction the first step has magnitude ~lr.
        assert p.data[0] == pytest.approx(1.0 - 0.1, abs=1e-3)


class TestStepLR:
    def test_decays_on_schedule(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_rejects_bad_step(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = RNG.normal(size=(4, 5))
        y = np.array([0, 2, 4, 1])
        loss = cross_entropy(Tensor(logits), y)
        p = np.exp(logits - logits.max(axis=1, keepdims=True))
        p /= p.sum(axis=1, keepdims=True)
        ref = -np.log(p[np.arange(4), y]).mean()
        assert loss.item() == pytest.approx(ref, abs=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = logits[1, 2] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-3

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        y = np.array([1, 0, 3])
        cross_entropy(logits, y).backward()
        p = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        p /= p.sum(axis=1, keepdims=True)
        onehot = np.zeros((3, 4))
        onehot[np.arange(3), y] = 1
        np.testing.assert_allclose(logits.grad, (p - onehot) / 3, atol=1e-5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3, dtype=int))

    def test_numerical_stability_large_logits(self):
        logits = Tensor(np.array([[1e4, 0.0], [0.0, 1e4]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert np.isfinite(loss.item())


class TestOtherLosses:
    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_pixel_ce_matches_flattened_ce(self):
        logits = RNG.normal(size=(2, 3, 4, 4))
        targets = RNG.integers(0, 3, size=(2, 4, 4))
        loss = pixel_cross_entropy(Tensor(logits), targets)
        flat_logits = logits.transpose(0, 2, 3, 1).reshape(-1, 3)
        ref = cross_entropy(Tensor(flat_logits), targets.reshape(-1))
        assert loss.item() == pytest.approx(ref.item(), abs=1e-5)

    def test_pixel_ce_shape_validation(self):
        with pytest.raises(ValueError):
            pixel_cross_entropy(Tensor(np.zeros((1, 2, 3, 3))), np.zeros((1, 4, 4), dtype=int))

    def test_bce_with_logits(self):
        logits = Tensor(np.array([0.0, 10.0, -10.0]))
        targets = np.array([0.5, 1.0, 0.0])
        loss = bce_with_logits(logits, targets)
        assert loss.item() == pytest.approx(np.log(2) / 3, abs=1e-3)

    def test_yolo_loss_runs_and_decreases(self):
        rng = np.random.default_rng(0)
        target = np.zeros((2, 5 + 3, 4, 4), dtype=np.float32)
        target[:, 4, 1, 1] = 1.0  # one object
        target[:, 5, 1, 1] = 1.0  # class 0
        target[:, 0:4, 1, 1] = 0.5
        pred = Tensor(rng.normal(size=(2, 8, 4, 4)), requires_grad=True)
        loss = yolo_loss(pred, target, num_classes=3)
        loss.backward()
        assert np.isfinite(loss.item()) and pred.grad is not None

    def test_yolo_loss_shape_validation(self):
        with pytest.raises(ValueError):
            yolo_loss(Tensor(np.zeros((1, 8, 4, 4))), np.zeros((1, 8, 2, 2)), num_classes=3)
