"""Shared numerical-gradient checking helpers for the nn test suite."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(build_fn, x: np.ndarray, atol: float = 1e-2, rtol: float = 1e-2) -> None:
    """Assert autograd gradient of ``build_fn(Tensor) -> Tensor`` matches
    the numerical gradient.  ``build_fn`` must return a scalar Tensor."""
    t = Tensor(x.astype(np.float64), requires_grad=True)
    out = build_fn(t)
    assert out.size == 1, "check_grad requires a scalar output"
    out.backward()
    analytic = t.grad

    def scalar_fn(arr: np.ndarray) -> float:
        return float(build_fn(Tensor(arr)).data)

    numeric = numerical_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
