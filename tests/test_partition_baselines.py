"""Tests for the traditional partitioning strategies of §3.1."""

import numpy as np
import pytest

import repro.nn as nn
from repro.models import get_spec, vgg_mini
from repro.nn import Tensor
from repro.partition import (
    HaloExchangeForward,
    TileGrid,
    channel_partition_traffic,
    channel_traffic_per_block,
    enumerate_split_points,
    halo_elements_per_layer,
    naive_spatial_traffic,
)

RNG = np.random.default_rng(17)


class TestChannelPartition:
    def test_paper_vgg16_block1_estimate(self):
        """§3.1: VGG16 block-1 ofmap with 2 devices -> 51.38 Mbits, 11x the
        input image."""
        spec = get_spec("vgg16")
        per_block = channel_traffic_per_block(spec, 2)
        bits = per_block[0]["per_device_sent"] * 32
        assert bits == pytest.approx(51.38e6, rel=0.01)
        input_bits = spec.input_elements() * 32
        assert bits / input_bits == pytest.approx(11, rel=0.05)

    def test_traffic_grows_with_devices(self):
        spec = get_spec("vgg16")
        assert channel_partition_traffic(spec, 4) > channel_partition_traffic(spec, 2)

    def test_fc_blocks_excluded(self):
        per_block = channel_traffic_per_block(get_spec("vgg16"), 2)
        assert per_block[-1]["allgather_elements"] == 0

    def test_requires_two_devices(self):
        with pytest.raises(ValueError):
            channel_traffic_per_block(get_spec("vgg16"), 1)


class TestHaloAccounting:
    def test_zero_halo_for_fc(self):
        per = halo_elements_per_layer(get_spec("vgg16"), TileGrid(2, 2))
        assert per[-1]["halo_elements"] == 0

    def test_halo_much_smaller_than_channel_traffic(self):
        """§3.1: spatial partitioning exchanges far less than channel
        partitioning (only the halo ring, not whole feature maps)."""
        spec = get_spec("vgg16")
        halo = naive_spatial_traffic(spec, TileGrid(2, 2), num_blocks=7)
        chan = channel_partition_traffic(spec, 4, num_blocks=7)
        assert halo < chan / 10

    def test_finer_grid_more_halo(self):
        spec = get_spec("vgg16")
        assert naive_spatial_traffic(spec, TileGrid(4, 4), num_blocks=4) > naive_spatial_traffic(
            spec, TileGrid(2, 2), num_blocks=4
        )

    def test_rejects_1d_spec(self):
        with pytest.raises(ValueError):
            halo_elements_per_layer(get_spec("charcnn"), TileGrid(2, 2))

    def test_ring_clipped_at_image_boundary(self):
        """Corner tiles receive a smaller (clipped) ring than center tiles."""
        from repro.partition.halo import _tile_halo_elements

        # 4x4 grid on 16x16: corner tiles have 2 in-image sides, center 4.
        total = _tile_halo_elements(TileGrid(4, 4), 16, 16, channels=1, halo=1)
        # Full (unclipped) ring for a 4x4 tile with halo 1 is 6*6-16=20.
        assert total < 16 * 20


class TestHaloExchangeForward:
    def test_exact_equivalence(self):
        """Naive spatial partition with halo exchange must be bit-identical
        to unpartitioned execution."""
        model = vgg_mini(input_size=24).eval()
        stack = model.separable_part()
        runner = HaloExchangeForward(stack, TileGrid(2, 2))
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        ref = stack(Tensor(x)).data
        np.testing.assert_allclose(runner(x), ref, atol=1e-6)

    def test_traffic_accounted(self):
        model = vgg_mini(input_size=24).eval()
        runner = HaloExchangeForward(model.separable_part(), TileGrid(2, 2))
        runner(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
        assert runner.exchanged_elements > 0

    def test_traffic_resets_between_calls(self):
        model = vgg_mini(input_size=24).eval()
        runner = HaloExchangeForward(model.separable_part(), TileGrid(2, 2))
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        runner(x)
        first = runner.exchanged_elements
        runner(x)
        assert runner.exchanged_elements == first


class TestLayerwiseSplit:
    def test_enumerates_all_points(self):
        spec = get_spec("vgg16")
        points = enumerate_split_points(spec)
        assert len(points) == len(spec.blocks) + 1

    def test_edge_plus_cloud_is_total(self):
        spec = get_spec("vgg16")
        total = spec.total_macs()
        for p in enumerate_split_points(spec):
            assert p.edge_macs + p.cloud_macs == total

    def test_split_zero_transfers_input(self):
        spec = get_spec("vgg16")
        assert enumerate_split_points(spec)[0].transfer_elements == spec.input_elements()

    def test_full_edge_transfers_nothing(self):
        spec = get_spec("vgg16")
        assert enumerate_split_points(spec)[-1].transfer_elements == 0

    def test_early_splits_transfer_more_than_input(self):
        """§7.4: early-layer ofmaps are large — the reason Neurosurgeon's
        early cuts pay a big communication cost."""
        spec = get_spec("vgg16")
        points = enumerate_split_points(spec)
        assert points[1].transfer_elements > spec.input_elements()
