"""Fault-tolerance tests: supervision, re-dispatch, restart, recovery probes.

The ISSUE-1 acceptance paths: a worker killed mid-``infer_stream`` has its
pending tiles re-dispatched and the run completes bit-identical to a
healthy run; with every worker dead, ``infer`` degrades to central-node
local execution instead of raising ``SchedulingError``; a restarted worker
re-earns share through recovery probes.
"""

import multiprocessing as mp
import threading
import time

import numpy as np
import pytest

from repro.models import vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid
from repro.runtime import (
    LOCAL_WORKER,
    ProcessCluster,
    ProcessClusterConfig,
    Shutdown,
    TileTask,
    drain_queue,
)

RNG = np.random.default_rng(93)


def small_model():
    return vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()


def images(n):
    return [RNG.normal(size=(1, 3, 24, 24)).astype(np.float32) for _ in range(n)]


class TestRedispatch:
    def test_kill_mid_stream_bit_identical(self):
        """Acceptance: one worker killed mid-stream with a generous deadline
        -> pending tiles re-dispatched, zero_filled == 0, and the outputs
        are bit-identical to the same stream on a healthy cluster."""
        model = small_model()
        imgs = images(3)
        cfg = ProcessClusterConfig(num_workers=2, t_limit=30.0, delay_per_tile=(0.0, 0.15))
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            healthy = cluster.infer_stream(imgs, pipeline_depth=2)
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            killer = threading.Timer(0.25, cluster.kill_worker, args=(1,))
            killer.start()
            try:
                outcomes = cluster.infer_stream(imgs, pipeline_depth=2)
            finally:
                killer.cancel()
        for healthy_out, out in zip(healthy, outcomes):
            assert out.zero_filled_tiles == []
            np.testing.assert_array_equal(out.output, healthy_out.output)
        # The dead worker's share really moved: every tile was answered.
        assert all(o.received_per_worker.sum() + len(o.locally_computed_tiles) == 4
                   for o in outcomes)

    def test_redispatch_disabled_zero_fills(self):
        """With the supervision re-dispatch off, a killed worker's pending
        tiles fall back to the paper's deadline zero-fill."""
        model = small_model()
        cfg = ProcessClusterConfig(
            num_workers=2, t_limit=1.0, delay_per_tile=(0.0, 0.15), redispatch=False
        )
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            killer = threading.Timer(0.2, cluster.kill_worker, args=(1,))
            killer.start()
            try:
                out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            finally:
                killer.cancel()
        assert len(out.zero_filled_tiles) > 0
        assert np.isfinite(out.output).all()


class TestLocalFallback:
    def test_all_workers_dead_runs_locally(self):
        """Acceptance: every worker dead -> infer() degrades to central-node
        local execution instead of raising SchedulingError."""
        model = small_model()
        grid = TileGrid(2, 2)
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        local = FDSPModel(model, grid)
        local.eval()
        expected = local(Tensor(x)).data
        with ProcessCluster(model, grid, config=ProcessClusterConfig(num_workers=2)) as cluster:
            cluster.kill_worker(0)
            cluster.kill_worker(1)
            out = cluster.infer(x)
        assert out.zero_filled_tiles == []
        assert out.locally_computed_tiles == [0, 1, 2, 3]
        assert out.received_per_worker.sum() == 0
        np.testing.assert_allclose(out.output, expected, atol=1e-5)

    def test_workers_die_mid_collect_central_takes_over(self):
        """All workers killed while results are pending: supervision finds
        no survivors and the central process computes the missing tiles."""
        model = small_model()
        cfg = ProcessClusterConfig(
            num_workers=2, t_limit=30.0, delay_per_tile=(0.15, 0.15)
        )
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            for wid in (0, 1):
                threading.Timer(0.2, cluster.kill_worker, args=(wid,)).start()
            out = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
        assert out.zero_filled_tiles == []
        assert len(out.locally_computed_tiles) > 0
        assert np.isfinite(out.output).all()


class TestRestartAndProbes:
    def test_restart_then_probe_regains_share(self):
        """Kill -> s_k decays while dead -> restart policy respawns the
        worker -> a recovery probe lets it re-earn allocation share."""
        model = small_model()
        cfg = ProcessClusterConfig(
            num_workers=2,
            t_limit=10.0,
            gamma=1.0,            # s_k tracks the last image exactly
            max_restarts=1,
            restart_backoff=0.1,
            probe_interval=1,
        )
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            cluster.kill_worker(1)
            out_dead = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            assert out_dead.allocation[1] == 0  # routed around the corpse
            time.sleep(0.15)  # let the restart backoff elapse
            last = None
            for _ in range(3):
                last = cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            assert cluster.restart_counts == [0, 1]
            assert cluster.worker_rates[1] > 0  # probe delivered, share re-earned
            assert last.allocation[1] >= 1
            assert last.zero_filled_tiles == []

    def test_no_restarts_by_default(self):
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=2)) as cluster:
            cluster.kill_worker(1)
            cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            cluster.infer(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
            assert cluster.restart_counts == [0, 0]
            assert not cluster._procs[1].is_alive()


class TestDrainProtocol:
    def test_drain_recovers_undelivered_tasks(self):
        ctx = mp.get_context("fork")
        q = ctx.Queue()
        for tid in range(3):
            q.put(TileTask(0, tid, np.zeros((1, 1, 2, 2), dtype=np.float32)))
        q.put(Shutdown())
        drained = drain_queue(q)
        assert [t.tile_id for t in drained] == [0, 1, 2]  # Shutdown discarded

    def test_drain_empty_queue(self):
        ctx = mp.get_context("fork")
        assert drain_queue(ctx.Queue()) == []


class TestConfigValidation:
    def test_new_knobs_validated(self):
        with pytest.raises(ValueError):
            ProcessClusterConfig(max_restarts=-1)
        with pytest.raises(ValueError):
            ProcessClusterConfig(restart_backoff=2.0, restart_backoff_cap=1.0)
        with pytest.raises(ValueError):
            ProcessClusterConfig(probe_interval=-1)
        with pytest.raises(ValueError):
            ProcessClusterConfig(poll_interval=0.0)

    def test_local_worker_sentinel(self):
        assert LOCAL_WORKER == -1
