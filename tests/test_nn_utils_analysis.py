"""Tests for nn utilities (clipping, summaries), new activations, AlexNet
spec, and simulator run analysis."""

import numpy as np
import pytest

import repro.nn as nn
from repro.models import get_spec, vgg_mini
from repro.nn import Parameter, Tensor
from repro.nn.utils import clip_grad_norm, count_parameters, model_summary
from repro.simulator import render_timeline, stage_breakdown

from gradcheck import check_grad

RNG = np.random.default_rng(67)


class TestLeakyReLU:
    def test_values(self):
        out = nn.LeakyReLU(0.1)(Tensor(np.array([-2.0, 0.0, 3.0])))
        np.testing.assert_allclose(out.data, [-0.2, 0.0, 3.0])

    def test_grad(self):
        x = RNG.normal(size=(10,))
        x[np.abs(x) < 0.1] = 0.5
        check_grad(lambda t: t.leaky_relu(0.1).sum(), x)

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.LeakyReLU(-0.1)


class TestSoftmax:
    def test_sums_to_one(self):
        out = nn.Softmax(axis=1)(Tensor(RNG.normal(size=(4, 7))))
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0, atol=1e-6)

    def test_stable_with_large_logits(self):
        out = nn.Softmax(axis=1)(Tensor(np.array([[1e4, 0.0]])))
        assert np.isfinite(out.data).all()

    def test_grad_flows(self):
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        (nn.Softmax(axis=1)(x)[0, 0] * 1.0).sum().backward()
        assert x.grad is not None


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 0.1
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(0.2)
        np.testing.assert_allclose(p.grad, 0.1)

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 10.0
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_skips_none_grads(self):
        p = Parameter(np.zeros(3))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestModelSummary:
    def test_counts_and_layers(self):
        model = vgg_mini(num_classes=3, input_size=24, base_width=4)
        text = model_summary(model)
        assert "Conv2d" in text and "TOTAL" in text
        assert f"{count_parameters(model):,}" in text

    def test_output_shapes_recorded(self):
        model = vgg_mini(num_classes=3, input_size=24, base_width=4)
        text = model_summary(model, input_shape=(3, 24, 24))
        assert "(1, 3)" in text  # final logits shape

    def test_forward_restored_after_summary(self):
        model = vgg_mini(num_classes=3, input_size=24, base_width=4).eval()
        x = Tensor(RNG.normal(size=(1, 3, 24, 24)))
        before = model(x).data
        model_summary(model, input_shape=(3, 24, 24))
        np.testing.assert_allclose(model(x).data, before, atol=1e-6)


class TestAlexNetSpec:
    def test_macs_magnitude(self):
        """AlexNet is ~0.7 GMACs at 224."""
        spec = get_spec("alexnet")
        assert 0.4e9 < spec.total_macs() < 1.5e9

    def test_block_structure(self):
        spec = get_spec("alexnet")
        assert len(spec.blocks) == 6  # 5 conv + FC
        assert spec.separable_prefix == 2  # §2.3: layers 1-2 are local


class TestRunAnalysis:
    def _records(self):
        from repro.experiments import build_adcnn_system

        system = build_adcnn_system("vgg16", num_nodes=4)
        return system.run(6)

    def test_stage_breakdown_sums_to_latency(self):
        records = self._records()
        bd = stage_breakdown(records, skip=1)
        mean_latency = float(np.mean([r.latency for r in records[1:]]))
        assert bd.total_s == pytest.approx(mean_latency, rel=1e-6)

    def test_breakdown_requires_records(self):
        with pytest.raises(ValueError):
            stage_breakdown([])

    def test_timeline_renders(self):
        records = self._records()
        text = render_timeline(records, width=40)
        assert "img  0" in text
        assert "d" in text and "c" in text and "r" in text

    def test_timeline_empty(self):
        assert render_timeline([]) == "(no records)"

    def test_timeline_truncates(self):
        records = self._records()
        text = render_timeline(records, max_rows=2)
        assert "more" in text
