"""Tests for FDSP — the paper's core partitioning contribution (§3.2).

The central correctness contract: per-tile zero-padded execution equals
unpartitioned execution on every pixel further than ``receptive_border``
from a tile edge, and *only* the border band may differ.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn
from repro.models import charcnn_mini, vgg_mini
from repro.models.blocks import LayerBlock, ResidualBlock
from repro.nn import Tensor
from repro.partition import (
    FDSPModel,
    SegmentGrid,
    TileGrid,
    fdsp_forward,
    interior_mask,
    receptive_border,
)

RNG = np.random.default_rng(13)


def make_stack(num_blocks=2, channels=4, pool_at=(), seed=0):
    rng = np.random.default_rng(seed)
    blocks = []
    in_ch = 3
    for i in range(num_blocks):
        blocks.append(LayerBlock(in_ch, channels, 3, pool=2 if i in pool_at else None, rng=rng))
        in_ch = channels
    stack = nn.Sequential(*blocks)
    stack.eval()
    return stack


class TestReceptiveBorder:
    def test_single_conv3(self):
        assert receptive_border(make_stack(1)) == 1

    def test_two_conv3(self):
        assert receptive_border(make_stack(2)) == 2

    def test_pool_shrinks_border(self):
        # conv3 (b=1), pool2 (b=ceil(1/2)=1), conv3 (b=2)
        assert receptive_border(make_stack(2, pool_at=(0,))) == 2

    def test_conv_then_pool(self):
        # conv3, conv3 (b=2), pool at the end: ceil(2/2) = 1
        assert receptive_border(make_stack(2, pool_at=(1,))) == 1

    def test_residual_block(self):
        stack = nn.Sequential(ResidualBlock(4, 4))
        assert receptive_border(stack) == 2  # two 3x3 convs

    def test_unknown_block_raises(self):
        with pytest.raises(TypeError):
            receptive_border(nn.Sequential(nn.Linear(3, 3)))


class TestInteriorMask:
    def test_mask_shape_and_border(self):
        mask = interior_mask(TileGrid(2, 2), (8, 8), border=1)
        assert mask.shape == (8, 8)
        tile = mask[:4, :4]
        assert tile[0].sum() == 0 and tile[:, 0].sum() == 0  # border row/col False
        assert tile[1:3, 1:3].all()

    def test_zero_border_all_true(self):
        assert interior_mask(TileGrid(2, 2), (8, 8), border=0).all()

    def test_border_too_wide_all_false(self):
        assert not interior_mask(TileGrid(4, 4), (8, 8), border=1).any()

    def test_1d_mask(self):
        mask = interior_mask(SegmentGrid(4), (16,), border=1)
        assert mask.shape == (16,)
        assert mask.sum() == 4 * 2  # each 4-long segment keeps middle 2


class TestFDSPEquivalence:
    @pytest.mark.parametrize("grid", [TileGrid(2, 2), TileGrid(2, 4), TileGrid(4, 4)])
    def test_interior_exact(self, grid):
        """FDSP equals unpartitioned execution on all interior pixels."""
        stack = make_stack(2, pool_at=(0,))
        x = RNG.normal(size=(1, 3, 16, 16)).astype(np.float32)
        full = stack(Tensor(x)).data
        parted = fdsp_forward(stack, x, grid).data
        border = receptive_border(stack)
        mask = interior_mask(grid, full.shape[2:], border)
        np.testing.assert_allclose(parted[:, :, mask], full[:, :, mask], atol=1e-5)

    def test_border_actually_differs(self):
        """Zero-padding must perturb the border band (otherwise the
        retraining story of §5 would be vacuous)."""
        stack = make_stack(2)
        x = RNG.normal(size=(1, 3, 16, 16)).astype(np.float32)
        full = stack(Tensor(x)).data
        parted = fdsp_forward(stack, x, TileGrid(2, 2)).data
        assert not np.allclose(parted, full, atol=1e-3)

    def test_output_shape_preserved(self):
        stack = make_stack(2, pool_at=(0,))
        out = fdsp_forward(stack, RNG.normal(size=(2, 3, 16, 16)), TileGrid(2, 2))
        assert out.shape == (2, 4, 8, 8)

    @settings(max_examples=10, deadline=None)
    @given(
        rows=st.integers(1, 3),
        cols=st.integers(1, 3),
        num_blocks=st.integers(1, 3),
        seed=st.integers(0, 100),
    )
    def test_interior_exact_property(self, rows, cols, num_blocks, seed):
        """Property: random stacks, random grids — interior always exact."""
        grid = TileGrid(rows, cols)
        stack = make_stack(num_blocks, channels=3, seed=seed)
        rng = np.random.default_rng(seed)
        h = rows * cols * 4
        x = rng.normal(size=(1, 3, h, h)).astype(np.float32)
        full = stack(Tensor(x)).data
        parted = fdsp_forward(stack, x, grid).data
        mask = interior_mask(grid, full.shape[2:], receptive_border(stack))
        if mask.any():
            np.testing.assert_allclose(parted[:, :, mask], full[:, :, mask], atol=1e-4)

    def test_1x1_grid_is_identity(self):
        stack = make_stack(2)
        x = RNG.normal(size=(1, 3, 12, 12)).astype(np.float32)
        np.testing.assert_allclose(
            fdsp_forward(stack, x, TileGrid(1, 1)).data, stack(Tensor(x)).data, atol=1e-6
        )

    def test_1d_segments(self):
        model = charcnn_mini(vocab=8, length=64).eval()
        stack = model.separable_part()
        x = RNG.normal(size=(1, 8, 64)).astype(np.float32)
        full = stack(Tensor(x)).data
        parted = fdsp_forward(stack, x, SegmentGrid(4)).data
        border = receptive_border(stack)
        mask = interior_mask(SegmentGrid(4), (full.shape[2],), border)
        if mask.any():
            np.testing.assert_allclose(parted[:, :, mask], full[:, :, mask], atol=1e-4)


class TestFDSPModel:
    def test_forward_shape(self):
        model = vgg_mini(num_classes=4, input_size=48).eval()
        fdsp = FDSPModel(model, "4x4")
        fdsp.eval()
        out = fdsp(Tensor(RNG.normal(size=(2, 3, 48, 48))))
        assert out.shape == (2, 4)

    def test_grid_validation_runs(self):
        model = vgg_mini(input_size=48)  # separable reduction 2, tile 6
        with pytest.raises(ValueError):
            FDSPModel(model, TileGrid(16, 16))  # tile 3 not divisible by 2

    def test_compression_stages(self):
        model = vgg_mini(num_classes=4, input_size=48).eval()
        clip = nn.ClippedReLU(0.1, 2.0)
        quant = nn.QuantizeSTE(bits=4, max_value=clip.output_range)
        fdsp = FDSPModel(model, "2x2", clipped_relu=clip, quantizer=quant)
        fdsp.eval()
        assert fdsp.has_compression
        sep = fdsp.separable_output(Tensor(RNG.normal(size=(1, 3, 48, 48))))
        # Output must be on the 4-bit grid within [0, b-a].
        assert sep.data.min() >= 0 and sep.data.max() <= clip.output_range + 1e-6
        steps = sep.data / quant.step
        np.testing.assert_allclose(steps, np.rint(steps), atol=1e-4)

    def test_gradient_reaches_separable_weights(self):
        """The Figure 7(b) training graph must backprop into the separable
        conv weights through split/clip/quantize."""
        model = vgg_mini(num_classes=4, input_size=48)
        clip = nn.ClippedReLU(0.0, 4.0)
        quant = nn.QuantizeSTE(bits=4, max_value=4.0)
        fdsp = FDSPModel(model, "2x2", clipped_relu=clip, quantizer=quant)
        x = Tensor(RNG.normal(size=(2, 3, 48, 48)))
        loss = nn.losses.cross_entropy(fdsp(x), np.array([0, 1]))
        loss.backward()
        first_conv = model.blocks[0].conv.weight
        assert first_conv.grad is not None and np.abs(first_conv.grad).sum() > 0

    def test_parameters_shared_with_wrapped_model(self):
        model = vgg_mini()
        fdsp = FDSPModel(model, "2x2")
        assert set(id(p) for p in model.parameters()) <= set(id(p) for p in fdsp.parameters())

    def test_no_compression_by_default(self):
        assert not FDSPModel(vgg_mini(), "2x2").has_compression

    def test_charcnn_string_grid(self):
        model = charcnn_mini(vocab=16, length=128).eval()
        fdsp = FDSPModel(model, "2x2")  # -> 4 segments
        assert isinstance(fdsp.grid, SegmentGrid) and fdsp.grid.num_segments == 4
        from repro.models import encode_text

        x = Tensor(encode_text(RNG.integers(0, 16, size=(1, 128)), 16))
        fdsp.eval()
        assert fdsp(x).shape == (1, 4)
