"""Tests for the Module system and layer wrappers."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor

RNG = np.random.default_rng(11)


def tiny_net() -> nn.Sequential:
    rng = np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 2 * 2, 3, rng=rng),
    )


class TestModuleRegistry:
    def test_parameters_discovered(self):
        net = tiny_net()
        names = [n for n, _ in net.named_parameters()]
        assert "0.weight" in names and "1.gamma" in names and "5.bias" in names

    def test_num_parameters(self):
        lin = nn.Linear(3, 2)
        assert lin.num_parameters() == 3 * 2 + 2

    def test_buffers_discovered(self):
        net = tiny_net()
        buf_names = [n for n, _ in net.named_buffers()]
        assert "1.running_mean" in buf_names and "1.running_var" in buf_names

    def test_train_eval_propagates(self):
        net = tiny_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = tiny_net()
        x = Tensor(RNG.normal(size=(2, 1, 4, 4)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net1, net2 = tiny_net(), tiny_net()
        # Perturb net1 so the two differ.
        for p in net1.parameters():
            p.data += 1.0
        state = net1.state_dict()
        net2.load_state_dict(state)
        x = Tensor(RNG.normal(size=(2, 1, 4, 4)))
        net1.eval(), net2.eval()
        np.testing.assert_allclose(net1(x).data, net2(x).data, atol=1e-6)

    def test_state_dict_is_a_copy(self):
        net = tiny_net()
        state = net.state_dict()
        state["0.weight"] += 99.0
        assert not np.allclose(dict(net.named_parameters())["0.weight"].data, state["0.weight"])

    def test_strict_mismatch_raises(self):
        net = tiny_net()
        state = net.state_dict()
        del state["0.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = tiny_net()
        state = net.state_dict()
        state["0.weight"] = np.zeros((1, 1, 1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_running_stats_survive_roundtrip(self):
        net1, net2 = tiny_net(), tiny_net()
        x = Tensor(RNG.normal(loc=4.0, size=(8, 1, 4, 4)))
        net1(x)  # training mode updates running stats
        net2.load_state_dict(net1.state_dict())
        bn1, bn2 = net1[1], net2[1]
        np.testing.assert_allclose(bn1.running_mean, bn2.running_mean)


class TestSequential:
    def test_slicing_returns_sequential(self):
        net = tiny_net()
        head = net[:3]
        assert isinstance(head, nn.Sequential) and len(head) == 3

    def test_forward_shape(self):
        net = tiny_net()
        out = net(Tensor(RNG.normal(size=(2, 1, 4, 4))))
        assert out.shape == (2, 3)

    def test_split_equals_whole(self):
        """Slicing a Sequential (how ADCNN splits separable/rest) must not
        change the computation."""
        net = tiny_net().eval()
        x = Tensor(RNG.normal(size=(2, 1, 4, 4)))
        whole = net(x)
        head, tail = net[:3], net[3:]
        parted = tail(head(x))
        np.testing.assert_allclose(whole.data, parted.data, atol=1e-6)


class TestLayers:
    def test_clipped_relu_module(self):
        m = nn.ClippedReLU(0.2, 2.0)
        assert m.output_range == pytest.approx(1.8)
        out = m(Tensor(np.array([3.0])))
        np.testing.assert_allclose(out.data, [1.8])

    def test_clipped_relu_invalid(self):
        with pytest.raises(ValueError):
            nn.ClippedReLU(2.0, 1.0)

    def test_quantize_module_levels(self):
        q = nn.QuantizeSTE(bits=4, max_value=1.8)
        assert q.num_levels == 16
        out = q(Tensor(RNG.uniform(0, 1.8, size=(100,))))
        uniq = np.unique(np.round(out.data / q.step).astype(int))
        assert uniq.max() <= 15

    def test_quantize_invalid(self):
        with pytest.raises(ValueError):
            nn.QuantizeSTE(bits=0)
        with pytest.raises(ValueError):
            nn.QuantizeSTE(max_value=-1.0)

    def test_conv2d_shapes(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(Tensor(RNG.normal(size=(1, 3, 8, 8))))
        assert out.shape == (1, 8, 4, 4)

    def test_conv1d_shapes(self):
        conv = nn.Conv1d(4, 8, 5, padding=2)
        out = conv(Tensor(RNG.normal(size=(2, 4, 16))))
        assert out.shape == (2, 8, 16)

    def test_identity(self):
        x = Tensor(RNG.normal(size=(3,)))
        assert nn.Identity()(x) is x

    def test_global_avg_pool_module(self):
        out = nn.GlobalAvgPool2d()(Tensor(np.ones((2, 3, 4, 4))))
        assert out.shape == (2, 3)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_bn_fused_inference_params(self):
        bn = nn.BatchNorm2d(2)
        bn.running_mean[:] = [1.0, 2.0]
        bn.running_var[:] = [4.0, 9.0]
        a, b = bn.fused_inference_params()
        np.testing.assert_allclose(a, 1.0 / np.sqrt(np.array([4.0, 9.0]) + 1e-5), atol=1e-6)
        np.testing.assert_allclose(b, -np.array([1.0, 2.0]) * a, atol=1e-6)


class TestTrainingSmoke:
    def test_one_sgd_step_reduces_loss(self):
        """End-to-end: a tiny conv net fits a fixed batch."""
        net = tiny_net()
        opt = nn.optim.SGD(net.parameters(), lr=0.05)
        x = Tensor(RNG.normal(size=(8, 1, 4, 4)))
        y = RNG.integers(0, 3, size=8)
        losses = []
        for _ in range(30):
            opt.zero_grad()
            loss = nn.losses.cross_entropy(net(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5
