"""Test-time resource sanitizer (auto-enabled via the root conftest).

Every test is wrapped with before/after snapshots of the process-level
resources the runtime manipulates:

- **child processes** — ``multiprocessing.active_children()``; a cluster
  that is not stopped leaves its forked Conv nodes behind;
- **POSIX shm segments and named semaphores** — new ``/dev/shm`` entries
  (``psm_*`` segments, ``sem.*`` semaphores on Linux/glibc); an arena that
  is never destroyed leaves its slots behind;
- **file descriptors** — ``/proc/self/fd`` count (queue pipes, shm
  mappings); a small tolerance absorbs interpreter-level caching.

A leak fails the test in its *call* phase (so ``xfail(strict=True)`` demo
tests cover the sanitizer itself), then the sanitizer cleans the leak up so
one bad test cannot cascade into later ones.  Mark a test with
``@pytest.mark.allow_leaks`` to opt out (e.g. when a paired follow-up test
cleans up deliberately-staged state).

This turns PR 3's one-off "leak-free shutdown" subprocess check into a
blanket guarantee across the whole suite.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
import time
from contextlib import suppress
from multiprocessing import shared_memory

import pytest

SHM_DIR = "/dev/shm"
FD_DIR = "/proc/self/fd"

#: Allowed fd-count growth per test.  Legitimate one-time growth exists
#: (hypothesis opens its example database lazily, imports cache file
#: handles); real leaks — queue pipes, shm mappings — come in bigger
#: batches and recur.
FD_TOLERANCE = 4

#: How long to let async cleanup settle (queue feeder threads, zombie
#: reaping) before declaring a leak.
SETTLE_RETRIES = 4
SETTLE_SLEEP = 0.05


class ResourceLeakError(AssertionError):
    """Raised (in the test's call phase) when a test leaks resources."""


def _children() -> dict[int, mp.process.BaseProcess]:
    return {p.pid: p for p in mp.active_children() if p.pid is not None}


def _shm_entries() -> frozenset[str]:
    try:
        return frozenset(os.listdir(SHM_DIR))
    except OSError:
        return frozenset()


def _fd_count() -> int:
    try:
        return len(os.listdir(FD_DIR))
    except OSError:
        return -1


def _cleanup_children(procs: list[mp.process.BaseProcess]) -> None:
    for proc in procs:
        with suppress(Exception):
            proc.terminate()
    for proc in procs:
        with suppress(Exception):
            proc.join(timeout=2.0)


def _cleanup_shm(names: list[str]) -> None:
    for name in names:
        if name.startswith("sem."):
            with suppress(OSError):
                os.unlink(os.path.join(SHM_DIR, name))
            continue
        try:
            seg = shared_memory.SharedMemory(name=name)
        except OSError:
            continue
        with suppress(Exception):
            seg.unlink()
        with suppress(Exception):
            seg.close()


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "allow_leaks: skip the resource sanitizer for this test "
        "(it deliberately stages resources a paired test cleans up)",
    )


def pytest_sessionstart(session: pytest.Session) -> None:
    """Warm up multiprocessing internals before any per-test baseline.

    The resource-tracker process, queue machinery, and semaphore plumbing
    all allocate fds lazily on first use; creating them once here keeps
    the first mp-using test's fd delta honest.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        ctx = mp.get_context("fork")
        q = ctx.Queue()
        q.put(None)
        q.get(timeout=5.0)
        q.close()
        q.join_thread()
        ctx.Semaphore(1)
        if os.path.isdir(SHM_DIR):
            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
    except Exception:
        # No fork start method / no /dev/shm: the per-test checks still
        # work, they just see a slightly noisier first test.
        pass
    gc.collect()


def _leak_report(item: pytest.Item, children_before: dict, shm_before: frozenset[str],
                 fds_before: int) -> str | None:
    """Settle, diff against the baseline, clean any leaks, describe them."""
    leaked_children: list[mp.process.BaseProcess] = []
    leaked_shm: list[str] = []
    fd_growth = 0
    for attempt in range(SETTLE_RETRIES + 1):
        # Drop queue buffers / unclosed handles the test left to the GC, and
        # reap finished children, before comparing against the baseline.
        gc.collect()
        now_children = _children()
        leaked_children = [p for pid, p in now_children.items() if pid not in children_before]
        leaked_shm = sorted(_shm_entries() - shm_before)
        fds_now = _fd_count()
        fd_growth = (fds_now - fds_before) if (fds_now >= 0 and fds_before >= 0) else 0
        if not leaked_children and not leaked_shm and fd_growth <= FD_TOLERANCE:
            return None  # clean
        if attempt < SETTLE_RETRIES:
            time.sleep(SETTLE_SLEEP)

    problems: list[str] = []
    if leaked_children:
        desc = ", ".join(f"{p.name} (pid {p.pid})" for p in leaked_children)
        problems.append(f"leaked child process(es): {desc}")
    if leaked_shm:
        segs = [n for n in leaked_shm if not n.startswith("sem.")]
        sems = [n for n in leaked_shm if n.startswith("sem.")]
        if segs:
            problems.append(f"leaked POSIX shm segment(s): {', '.join(segs)}")
        if sems:
            problems.append(f"leaked named semaphore(s): {', '.join(sems)}")
    if fd_growth > FD_TOLERANCE:
        problems.append(
            f"file descriptor count grew by {fd_growth} (> tolerance {FD_TOLERANCE})"
        )

    # Clean up so one leaky test cannot poison every test after it.
    _cleanup_children(leaked_children)
    _cleanup_shm(leaked_shm)

    if not problems:
        return None
    return f"resource sanitizer: {item.nodeid} leaked resources — " + "; ".join(problems)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item: pytest.Item):
    if item.get_closest_marker("allow_leaks"):
        return (yield)

    children_before = _children()
    shm_before = _shm_entries()
    fds_before = _fd_count()

    test_raised = False
    try:
        result = yield
    except BaseException:
        test_raised = True
        raise
    finally:
        # Check + clean up even when the test already failed, but only
        # *raise* for the leak when the test would otherwise pass (the
        # original failure is the more useful signal).
        report = _leak_report(item, children_before, shm_before, fds_before)
        if report is not None and not test_raised:
            raise ResourceLeakError(report)
    return result
