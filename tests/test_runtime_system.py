"""Tests for the DES-backed ADCNN system (workload model + Figure 9 flow)."""

import math

import numpy as np
import pytest

from repro.models import get_spec
from repro.profiling import RASPBERRY_PI_3B, WIFI_LAN, DeviceProfile, LinkProfile
from repro.runtime import ADCNNConfig, ADCNNSystem, ADCNNWorkload
from repro.simulator import CpuSchedule, SimNode


def vgg_workload(**kw) -> ADCNNWorkload:
    defaults = dict(num_tiles=64, separable_prefix=13, compression_ratio=0.032)
    defaults.update(kw)
    return ADCNNWorkload.from_spec(get_spec("vgg16"), **defaults)


def make_cluster(n=8, profile=RASPBERRY_PI_3B, schedules=None, fail_times=None, recover_times=None):
    schedules = schedules or [CpuSchedule()] * n
    fail_times = fail_times or [None] * n
    recover_times = recover_times or [None] * n
    return [
        SimNode(
            f"n{i}",
            profile,
            cpu_schedule=schedules[i],
            fail_time=fail_times[i],
            recover_time=recover_times[i],
        )
        for i in range(n)
    ]


class TestWorkloadModel:
    def test_from_spec_splits(self):
        wl = vgg_workload()
        spec = get_spec("vgg16")
        assert wl.separable_macs + wl.rest_macs == pytest.approx(spec.total_macs(), rel=1e-6)
        assert wl.input_bits == pytest.approx(spec.input_elements() * 32)

    def test_compression_scales_output(self):
        dense = vgg_workload(compression_ratio=1.0)
        packed = vgg_workload(compression_ratio=0.032)
        assert packed.tile_output_bits == pytest.approx(dense.tile_output_bits * 0.032)

    def test_default_prefix_from_spec(self):
        wl = ADCNNWorkload.from_spec(get_spec("vgg16"), num_tiles=64)
        assert wl.rest_macs > vgg_workload().rest_macs  # 7-block prefix leaves more centrally

    def test_validation(self):
        with pytest.raises(ValueError):
            vgg_workload(num_tiles=0)
        with pytest.raises(ValueError):
            vgg_workload(compression_ratio=0.0)
        with pytest.raises(ValueError):
            ADCNNWorkload.from_spec(get_spec("vgg16"), 64, separable_prefix=99)


class TestADCNNSystemBasics:
    def test_homogeneous_even_allocation(self):
        """§7.2: identical Conv nodes each get the same number of tiles."""
        sys_ = ADCNNSystem(vgg_workload(), make_cluster(8), SimNode("c", RASPBERRY_PI_3B))
        recs = sys_.run(5)
        for r in recs:
            np.testing.assert_array_equal(r.allocation, np.full(8, 8))

    def test_no_tiles_lost_in_stable_cluster(self):
        sys_ = ADCNNSystem(vgg_workload(), make_cluster(4), SimNode("c", RASPBERRY_PI_3B))
        for r in sys_.run(5):
            assert r.zero_filled_tiles == 0
            assert r.received.sum() == 64

    def test_latency_well_below_single_device(self):
        """Figure 11: ADCNN with 8 nodes crushes the single-device time."""
        sys_ = ADCNNSystem(
            vgg_workload(),
            make_cluster(8),
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(pipeline_depth=1),
        )
        sys_.run(10)
        single = RASPBERRY_PI_3B.compute_time(get_spec("vgg16").total_macs())
        assert sys_.mean_latency(skip=1) < single / 3

    def test_records_monotone_completion(self):
        sys_ = ADCNNSystem(vgg_workload(), make_cluster(4), SimNode("c", RASPBERRY_PI_3B))
        recs = sys_.run(8)
        comps = [r.completion for r in recs]
        assert all(b >= a for a, b in zip(comps, comps[1:]))

    def test_pipelining_improves_throughput(self):
        """Figure 9: overlapping transfer and compute raises throughput."""
        lat = {}
        for depth in (1, 2):
            sys_ = ADCNNSystem(
                vgg_workload(),
                make_cluster(8),
                SimNode("c", RASPBERRY_PI_3B),
                config=ADCNNConfig(pipeline_depth=depth),
            )
            sys_.run(12)
            lat[depth] = sys_.makespan() / 12
        assert lat[2] < lat[1]

    def test_bits_accounting(self):
        wl = vgg_workload()
        sys_ = ADCNNSystem(wl, make_cluster(4), SimNode("c", RASPBERRY_PI_3B))
        sys_.run(3)
        expected = 3 * (wl.input_bits + wl.output_bits)
        assert sys_.total_transferred_bits() == pytest.approx(expected, rel=1e-6)

    def test_compression_reduces_latency_on_slow_link(self):
        """Figure 12: pruning matters most on the 12.66 Mbps link."""
        slow = LinkProfile("slow", 12.66e6, 2e-4)
        per_image = {}
        for ratio in (1.0, 0.032):
            # Prefix 7 (the paper's retraining config) ships the large
            # 28x28x256 map where compression matters most (§4's example).
            sys_ = ADCNNSystem(
                vgg_workload(compression_ratio=ratio, separable_prefix=7),
                make_cluster(8),
                SimNode("c", RASPBERRY_PI_3B),
                link=slow,
                config=ADCNNConfig(pipeline_depth=1),
            )
            sys_.run(10)
            per_image[ratio] = sys_.makespan() / 10
        assert per_image[0.032] < per_image[1.0] * 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            ADCNNSystem(vgg_workload(), [], SimNode("c", RASPBERRY_PI_3B))
        sys_ = ADCNNSystem(vgg_workload(), make_cluster(2), SimNode("c", RASPBERRY_PI_3B))
        with pytest.raises(ValueError):
            sys_.run(0)
        with pytest.raises(ValueError):
            ADCNNConfig(pipeline_depth=0)
        with pytest.raises(ValueError):
            ADCNNConfig(deadline_slack=0.5)


class TestAdaptivity:
    def test_throttle_shifts_allocation(self):
        """Figure 15: throttling nodes 5-8 moves tiles to nodes 1-4."""
        throttle_at = 3.0
        schedules = [CpuSchedule()] * 4 + [CpuSchedule(((throttle_at, 0.45),))] * 2 + [
            CpuSchedule(((throttle_at, 0.24),))
        ] * 2
        sys_ = ADCNNSystem(
            vgg_workload(),
            make_cluster(8, schedules=schedules),
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(pipeline_depth=1),
        )
        recs = sys_.run(40)
        first, last = recs[0], recs[-1]
        np.testing.assert_array_equal(first.allocation, np.full(8, 8))
        assert last.allocation[:4].min() > 8  # fast nodes picked up slack
        assert last.allocation[4:6].max() < 8
        assert last.allocation[6:].max() < last.allocation[4:6].min() + 1
        assert last.allocation.sum() == 64

    def test_latency_jumps_then_recovers(self):
        """Figure 15(b): latency spikes at degradation, then adaptation
        pulls it back below the spike (241 -> 392 -> 351 ms shape)."""
        throttle_at = 3.0
        schedules = [CpuSchedule()] * 4 + [CpuSchedule(((throttle_at, 0.45),))] * 2 + [
            CpuSchedule(((throttle_at, 0.24),))
        ] * 2
        sys_ = ADCNNSystem(
            vgg_workload(),
            make_cluster(8, schedules=schedules),
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(pipeline_depth=1),
        )
        recs = sys_.run(40)
        lat = np.array([r.latency for r in recs])
        before = lat[1:5].mean()
        spike = lat.max()
        settled = lat[-5:].mean()
        assert spike > before * 1.2
        assert before < settled < spike

    def test_failed_node_tiles_rerouted(self):
        """§6.3: a dead node's s_k decays and it stops receiving tiles."""
        sys_ = ADCNNSystem(
            vgg_workload(),
            make_cluster(4, fail_times=[None, None, None, 1.0]),
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(pipeline_depth=1),
        )
        recs = sys_.run(25)
        assert recs[-1].allocation[3] == 0
        assert recs[-1].allocation.sum() == 64
        assert recs[-1].zero_filled_tiles == 0
        # Early post-failure images lost that node's tiles to zero-fill.
        assert any(r.zero_filled_tiles > 0 for r in recs)

    def test_deadline_zero_fills(self):
        """A node throttled to ~0 forces the deadline path."""
        schedules = [CpuSchedule(), CpuSchedule(((0.0, 1e-6),))]
        sys_ = ADCNNSystem(
            vgg_workload(),
            make_cluster(2, schedules=schedules),
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(pipeline_depth=1),
        )
        recs = sys_.run(3)
        assert recs[0].zero_filled_tiles > 0
        assert math.isfinite(recs[0].completion)

    def test_heterogeneous_rates_respected(self):
        """§7.3: a node twice as fast converges to ~2x the tiles."""
        nodes = [
            SimNode("fast", RASPBERRY_PI_3B.scaled(2.0)),
            SimNode("slow", RASPBERRY_PI_3B),
        ]
        sys_ = ADCNNSystem(
            vgg_workload(),
            nodes,
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(pipeline_depth=1),
        )
        recs = sys_.run(30)
        ratio = recs[-1].allocation[0] / recs[-1].allocation[1]
        assert 1.5 < ratio < 2.6


class TestFaultSupervision:
    """Opt-in supervision in the DES backend (mirrors the process backend)."""

    def test_redispatch_keeps_zero_fill_at_zero(self):
        """With re-dispatch on, a dead node's bounced batches go to the
        survivors and no image loses tiles — unlike the default zero-fill
        story asserted in test_failed_node_tiles_rerouted."""
        sys_ = ADCNNSystem(
            vgg_workload(),
            make_cluster(4, fail_times=[None, None, None, 1.0]),
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(pipeline_depth=1, redispatch=True),
        )
        recs = sys_.run(25)
        assert all(r.zero_filled_tiles == 0 for r in recs)
        assert all(r.received.sum() == 64 for r in recs)
        # Algorithm 2 still learns the death: the corpse ends with nothing.
        assert recs[-1].allocation[3] == 0
        assert recs[-1].allocation.sum() == 64

    def test_recovered_node_regains_share_via_probe(self):
        """Fail-stop then revive: the EWMA alone would pin the revived
        node's s_k at ~0 forever; a recovery probe lets it re-earn share."""
        sys_ = ADCNNSystem(
            vgg_workload(),
            make_cluster(
                4,
                fail_times=[None, None, None, 1.0],
                recover_times=[None, None, None, 5.0],
            ),
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(pipeline_depth=1, redispatch=True, probe_interval=3),
        )
        recs = sys_.run(60)
        # The node really was routed around while dead...
        assert any(r.allocation[3] == 0 for r in recs)
        # ...and earned its way back after reviving.
        assert recs[-1].allocation[3] > 0
        assert recs[-1].zero_filled_tiles == 0
        assert all(r.zero_filled_tiles == 0 for r in recs)

    def test_no_probes_while_node_still_dead(self):
        """Probes only target *alive* nodes: without recovery the decayed
        node never gets another tile."""
        sys_ = ADCNNSystem(
            vgg_workload(),
            make_cluster(4, fail_times=[None, None, None, 1.0]),
            SimNode("c", RASPBERRY_PI_3B),
            config=ADCNNConfig(pipeline_depth=1, redispatch=True, probe_interval=3),
        )
        recs = sys_.run(30)
        first = next((i for i, r in enumerate(recs) if r.allocation[3] == 0), None)
        assert first is not None  # s_3 decayed to zero at some point
        assert all(r.allocation[3] == 0 for r in recs[first:])  # and stayed there
