"""Tests for the pipelined streaming mode of the process backend."""

import time

import numpy as np
import pytest

from repro.models import vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid
from repro.runtime import ProcessCluster, ProcessClusterConfig

RNG = np.random.default_rng(71)


def small_model():
    return vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()


class TestInferStream:
    def test_matches_sequential_outputs(self):
        """Pipelining must not change any prediction."""
        model = small_model()
        grid = TileGrid(2, 2)
        images = [RNG.normal(size=(1, 3, 24, 24)).astype(np.float32) for _ in range(4)]
        local = FDSPModel(model, grid)
        local.eval()
        with ProcessCluster(model, grid, config=ProcessClusterConfig(num_workers=2)) as cluster:
            outcomes = cluster.infer_stream(images, pipeline_depth=2)
        assert len(outcomes) == 4
        for img, out in zip(images, outcomes):
            np.testing.assert_allclose(out.output, local(Tensor(img)).data, atol=1e-5)
            assert out.zero_filled_tiles == []

    def test_results_in_input_order(self):
        model = small_model()
        images = [np.full((1, 3, 24, 24), float(i), dtype=np.float32) for i in range(3)]
        local = FDSPModel(model, TileGrid(2, 2))
        local.eval()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=2)) as cluster:
            outcomes = cluster.infer_stream(images)
        for img, out in zip(images, outcomes):
            np.testing.assert_allclose(out.output, local(Tensor(img)).data, atol=1e-5)

    def test_pipelining_improves_wall_time_with_sleepy_workers(self):
        """With sleep-dominated workers, depth-2 overlap beats depth-1."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=30.0, delay_per_tile=(0.05, 0.05))
        images = [RNG.normal(size=(1, 3, 24, 24)).astype(np.float32) for _ in range(4)]
        times = {}
        for depth in (1, 2):
            with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
                start = time.perf_counter()
                cluster.infer_stream(images, pipeline_depth=depth)
                times[depth] = time.perf_counter() - start
        assert times[2] < times[1] * 1.05  # at worst equal; usually faster

    def test_validation(self):
        model = small_model()
        cluster = ProcessCluster(model, TileGrid(2, 2))
        with pytest.raises(RuntimeError):
            cluster.infer_stream([np.zeros((1, 3, 24, 24), np.float32)])
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=1)) as c:
            with pytest.raises(ValueError):
                c.infer_stream([np.zeros((1, 3, 24, 24), np.float32)], pipeline_depth=0)

    def test_unbatched_inputs(self):
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=1)) as cluster:
            outcomes = cluster.infer_stream([RNG.normal(size=(3, 24, 24)).astype(np.float32)])
        assert outcomes[0].output.shape == (1, 3)
