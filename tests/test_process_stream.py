"""Tests for the pipelined streaming mode of the process backend."""

import time

import numpy as np
import pytest

from repro.models import vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid
from repro.runtime import ProcessCluster, ProcessClusterConfig

RNG = np.random.default_rng(71)


def small_model():
    return vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()


class TestInferStream:
    def test_matches_sequential_outputs(self):
        """Pipelining must not change any prediction."""
        model = small_model()
        grid = TileGrid(2, 2)
        images = [RNG.normal(size=(1, 3, 24, 24)).astype(np.float32) for _ in range(4)]
        local = FDSPModel(model, grid)
        local.eval()
        with ProcessCluster(model, grid, config=ProcessClusterConfig(num_workers=2)) as cluster:
            outcomes = cluster.infer_stream(images, pipeline_depth=2)
        assert len(outcomes) == 4
        for img, out in zip(images, outcomes):
            np.testing.assert_allclose(out.output, local(Tensor(img)).data, atol=1e-5)
            assert out.zero_filled_tiles == []

    def test_results_in_input_order(self):
        model = small_model()
        images = [np.full((1, 3, 24, 24), float(i), dtype=np.float32) for i in range(3)]
        local = FDSPModel(model, TileGrid(2, 2))
        local.eval()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=2)) as cluster:
            outcomes = cluster.infer_stream(images)
        for img, out in zip(images, outcomes):
            np.testing.assert_allclose(out.output, local(Tensor(img)).data, atol=1e-5)

    def test_pipelining_improves_wall_time_with_sleepy_workers(self):
        """With sleep-dominated workers, depth-2 overlap beats depth-1."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=30.0, delay_per_tile=(0.05, 0.05))
        images = [RNG.normal(size=(1, 3, 24, 24)).astype(np.float32) for _ in range(4)]
        times = {}
        for depth in (1, 2):
            with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
                start = time.perf_counter()
                cluster.infer_stream(images, pipeline_depth=depth)
                times[depth] = time.perf_counter() - start
        assert times[2] < times[1] * 1.05  # at worst equal; usually faster

    def test_validation(self):
        model = small_model()
        cluster = ProcessCluster(model, TileGrid(2, 2))
        with pytest.raises(RuntimeError):
            cluster.infer_stream([np.zeros((1, 3, 24, 24), np.float32)])
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=1)) as c:
            with pytest.raises(ValueError):
                c.infer_stream([np.zeros((1, 3, 24, 24), np.float32)], pipeline_depth=0)

    def test_unbatched_inputs(self):
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2), config=ProcessClusterConfig(num_workers=1)) as cluster:
            outcomes = cluster.infer_stream([RNG.normal(size=(3, 24, 24)).astype(np.float32)])
        assert outcomes[0].output.shape == (1, 3)


class TestHotLoopFixes:
    """Regression tests for the ISSUE 6 hot-loop latency bugfixes."""

    def test_stage_result_ring_full_is_nonblocking(self):
        """A full result ring must fall back inline immediately — the old
        code parked the worker on ``acquire(timeout=0.25)`` per tile."""
        import multiprocessing as mp

        from repro.runtime.messages import ArenaGrant
        from repro.runtime.process_backend import _stage_result

        grant = ArenaGrant(("bogus-slot",), 1 << 20)
        payload = np.ones((8, 8), dtype=np.float32)
        sem = mp.get_context("fork").Semaphore(0)  # ring exhausted
        t0 = time.perf_counter()
        out, cursor, ring_fallback = _stage_result(payload, grant, {}, sem, 3)
        elapsed = time.perf_counter() - t0
        assert out is payload  # shipped inline, not as a ShmRef
        assert cursor == 3  # slot not consumed
        assert ring_fallback  # reported so telemetry can count it
        assert elapsed < 0.1, f"ring-full probe blocked for {elapsed:.3f}s"

    def test_stage_result_oversized_payload_not_a_fallback(self):
        """Payloads that never fit a slot are inline by design, not ring
        exhaustion — they must not inflate the fallback counter."""
        import multiprocessing as mp

        from repro.runtime.messages import ArenaGrant
        from repro.runtime.process_backend import _stage_result

        grant = ArenaGrant(("bogus-slot",), 16)  # slot smaller than payload
        payload = np.ones((8, 8), dtype=np.float32)
        sem = mp.get_context("fork").Semaphore(1)
        out, cursor, ring_fallback = _stage_result(payload, grant, {}, sem, 0)
        assert out is payload
        assert cursor == 0
        assert not ring_fallback

    def test_tile_result_carries_ring_fallback_flag(self):
        from repro.runtime import TileResult

        res = TileResult(image_id=0, tile_id=0, payload=None, worker=0)
        assert res.ring_fallback is False

    def test_wait_results_blocks_then_wakes(self):
        """The idle wait must block on the result-queue readers (no 5 ms
        sleep floor) and wake as soon as any worker posts a result."""
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2),
                            config=ProcessClusterConfig(num_workers=2)) as cluster:
            t0 = time.perf_counter()
            assert cluster._wait_results(0.2) is False  # nothing pending
            assert time.perf_counter() - t0 >= 0.15
            cluster._result_queues[0].put("sentinel")
            t0 = time.perf_counter()
            assert cluster._wait_results(5.0) is True  # woke on the reader
            assert time.perf_counter() - t0 < 1.0
            assert cluster._result_queues[0].get(timeout=5.0) == "sentinel"

    def test_stream_engine_deadline_zero_fill(self):
        """T_L fires through the StreamEngine collect path (the formerly
        mistyped ``trigger: None`` state) and zero-fills the stragglers."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=1.0, delay_per_tile=(0.0, 5.0))
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            engine = cluster.stream_engine(window=1)
            engine.dispatch(cluster.validate_image(RNG.normal(size=(1, 3, 24, 24))))
            done = []
            while not done:
                done = engine.pump()
            (image_id, out), = done
        assert len(out.zero_filled_tiles) > 0
        assert np.isfinite(out.output).all()

    def test_stream_engine_admission_window(self):
        """can_dispatch mirrors the controller window; over-dispatch raises."""
        model = small_model()
        cfg = ProcessClusterConfig(num_workers=2, t_limit=30.0, delay_per_tile=(0.02, 0.02))
        with ProcessCluster(model, TileGrid(2, 2), config=cfg) as cluster:
            engine = cluster.stream_engine(window=2)
            img = cluster.validate_image(RNG.normal(size=(1, 3, 24, 24)))
            assert engine.can_dispatch
            engine.dispatch(img)
            assert engine.can_dispatch
            engine.dispatch(img)
            assert not engine.can_dispatch  # window full
            with pytest.raises(RuntimeError, match="window is full"):
                engine.dispatch(img)
            while engine.in_flight:
                engine.pump()
            assert engine.can_dispatch


class TestImageValidation:
    def test_infer_stream_rejects_wrong_shape(self):
        """Wrong-shaped inputs fail fast with a clear error, before any
        tile reaches a worker (the old path crashed mid-pipeline)."""
        model = small_model()
        with ProcessCluster(model, TileGrid(2, 2),
                            config=ProcessClusterConfig(num_workers=1)) as cluster:
            with pytest.raises(ValueError, match="does not match model input shape"):
                cluster.infer_stream([np.zeros((1, 3, 7, 7), np.float32)])
            with pytest.raises(ValueError, match="does not match model input shape"):
                cluster.infer_stream([
                    np.zeros((1, 3, 24, 24), np.float32),  # good
                    np.zeros((5, 5), np.float32),          # bad: whole batch rejected
                ])
            # nothing was dispatched: the cluster still serves good input
            out = cluster.infer_stream([np.zeros((1, 3, 24, 24), np.float32)])
            assert out[0].output.shape == (1, 3)

    def test_validate_image_accepts_and_coerces(self):
        model = small_model()
        cluster = ProcessCluster(model, TileGrid(2, 2))
        batched = cluster.validate_image(np.zeros((2, 3, 24, 24), np.float64))
        assert batched.shape == (2, 3, 24, 24) and batched.dtype == np.float32
        unbatched = cluster.validate_image(np.zeros((3, 24, 24), np.float32))
        assert unbatched.shape == (1, 3, 24, 24)
