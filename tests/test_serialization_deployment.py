"""Tests for model persistence and the high-level deployment API."""

import numpy as np
import pytest

from repro.models import vgg_mini
from repro.nn import Tensor
from repro.nn.serialization import load_model_into, load_state, save_model, save_state
from repro.partition import SegmentGrid, TileGrid
from repro.runtime import ADCNNDeployment

RNG = np.random.default_rng(61)


class TestSerialization:
    def test_state_roundtrip(self, tmp_path):
        state = {"a": RNG.normal(size=(3, 4)).astype(np.float32), "b": np.arange(5.0)}
        save_state(state, tmp_path / "s.npz", metadata={"k": 1})
        loaded, meta = load_state(tmp_path / "s.npz")
        assert meta == {"k": 1}
        np.testing.assert_array_equal(loaded["a"], state["a"])
        np.testing.assert_array_equal(loaded["b"], state["b"])

    def test_model_roundtrip(self, tmp_path):
        m1 = vgg_mini(num_classes=3, input_size=24, base_width=4, seed=1)
        for p in m1.parameters():
            p.data += RNG.normal(size=p.shape).astype(np.float32)
        save_model(m1, tmp_path / "m.npz")
        m2 = vgg_mini(num_classes=3, input_size=24, base_width=4, seed=2)
        load_model_into(m2, tmp_path / "m.npz")
        x = Tensor(RNG.normal(size=(1, 3, 24, 24)))
        m1.eval(), m2.eval()
        np.testing.assert_allclose(m1(x).data, m2(x).data, atol=1e-6)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(tmp_path / "missing.npz")

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state({"__meta__": np.zeros(1)}, tmp_path / "bad.npz")

    def test_metadata_optional(self, tmp_path):
        save_state({"x": np.zeros(2)}, tmp_path / "n.npz")
        _, meta = load_state(tmp_path / "n.npz")
        assert meta == {}


class TestDeployment:
    def make_deployment(self):
        model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2, seed=3)
        return ADCNNDeployment(model, TileGrid(2, 2), clip_lower=0.0, clip_upper=4.0, bits=4)

    def test_invalid_bounds(self):
        model = vgg_mini(num_classes=3, input_size=24, base_width=4)
        with pytest.raises(ValueError):
            ADCNNDeployment(model, "2x2", clip_lower=2.0, clip_upper=1.0)

    def test_local_inference_shape(self):
        dep = self.make_deployment()
        out = dep.infer_local(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32))
        assert out.shape == (1, 3)

    def test_serve_matches_local(self):
        dep = self.make_deployment()
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        with dep.serve(num_workers=2) as cluster:
            remote = cluster.infer(x).output
        np.testing.assert_allclose(remote, dep.infer_local(x), atol=1e-4)

    def test_save_load_roundtrip(self, tmp_path):
        dep = self.make_deployment()
        dep.save(tmp_path / "dep.npz")
        restored = ADCNNDeployment.load(
            tmp_path / "dep.npz",
            builder=vgg_mini,
            num_classes=3,
            input_size=24,
            base_width=6,
            separable_prefix=2,
            seed=99,  # different init — weights must come from disk
        )
        assert restored.clip_upper == dep.clip_upper
        assert restored.grid == dep.grid
        x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
        np.testing.assert_allclose(restored.infer_local(x), dep.infer_local(x), atol=1e-6)

    def test_segment_grid_roundtrip(self, tmp_path):
        from repro.models import charcnn_mini

        model = charcnn_mini(num_classes=3, vocab=8, length=64, base_width=8, separable_prefix=2)
        dep = ADCNNDeployment(model, SegmentGrid(4), 0.0, 2.0)
        dep.save(tmp_path / "c.npz")
        restored = ADCNNDeployment.load(
            tmp_path / "c.npz", builder=charcnn_mini,
            num_classes=3, vocab=8, length=64, base_width=8, separable_prefix=2,
        )
        assert isinstance(restored.grid, SegmentGrid) and restored.grid.num_segments == 4

    def test_from_progressive(self):
        """Package an actual Algorithm-1 result."""
        from repro.data import make_classification
        from repro.nn.losses import cross_entropy
        from repro.training import TrainConfig, evaluate_classification, progressive_retrain, train_epochs

        data = make_classification(num_samples=64, num_classes=3, image_size=24, seed=5)
        train, test = data.split()
        model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2, seed=5)
        cfg = TrainConfig(lr=0.05, batch_size=16)
        train_epochs(model, train.images, train.labels, cross_entropy, epochs=3, config=cfg)
        res = progressive_retrain(
            model, "2x2", train.images, train.labels, cross_entropy,
            lambda m: evaluate_classification(m, test.images, test.labels),
            max_epochs_per_stage=1, config=cfg,
        )
        dep = ADCNNDeployment.from_progressive(res)
        assert dep.clip_lower == res.bounds.lower
        out = dep.infer_local(test.images[:2])
        assert out.shape == (2, 3)
