"""Tests for the extension experiments, §2.3 locality, and the CLI runner."""

import numpy as np
import pytest

from repro.experiments import ext_failure, ext_grid_sweep, sec23_feature_locality
from repro.experiments.runner import EXPERIMENTS, main


class TestSec23Locality:
    def test_locality_declines_with_depth(self):
        report = sec23_feature_locality.run(base_epochs=2)
        scores = report.column("locality")
        assert len(scores) == 5
        assert all(0.0 <= s <= 1.0 + 1e-6 for s in scores)
        # Early blocks are (near-)perfectly local; depth erodes locality.
        assert scores[0] > 0.99
        assert scores[-1] <= scores[0]

    def test_locality_scores_shape(self):
        from repro.experiments.sec23_feature_locality import locality_scores
        from repro.models import vgg_mini

        model = vgg_mini(num_classes=3, input_size=48, base_width=4).eval()
        rng = np.random.default_rng(0)
        scores = locality_scores(model, rng.normal(size=(4, 3, 48, 48)).astype(np.float32))
        assert len(scores) == len(model.blocks)


class TestExtFailure:
    def test_dead_node_drained(self):
        report = ext_failure.run(num_images=30, fail_after_images=10)
        assert report.rows[-1]["dead_node_tiles"] == 0
        assert report.rows[0]["dead_node_tiles"] == 8

    def test_latency_cost_bounded(self):
        """Losing 1 of 8 nodes should cost roughly 8/7, not catastrophe."""
        report = ext_failure.run(num_images=30, fail_after_images=10)
        before = np.mean([r["latency_ms"] for r in report.rows[2:10]])
        after = np.mean([r["latency_ms"] for r in report.rows[-5:]])
        assert after < before * 1.5


class TestExtGridSweep:
    def test_monotone_then_overheads(self):
        report = ext_grid_sweep.run(tile_counts=(8, 64, 256), num_images=8)
        lat = report.column("latency_ms")
        # 64 tiles beats both the coarse and the ultra-fine grid.
        assert lat[1] < lat[0]
        assert lat[1] < lat[2]


class TestRunnerCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig13", "fig15", "table2", "ext-failure"):
            assert name in out

    def test_unknown(self, capsys):
        assert main(["nope"]) == 2

    def test_fast_run(self, capsys):
        assert main(["sec31", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "51.38" in out

    def test_registry_covers_every_paper_artifact(self):
        for name in ("fig03", "fig10", "table1", "table2", "fig11", "table3",
                      "fig12", "fig13", "fig14", "fig15", "sec31", "sec23"):
            assert name in EXPERIMENTS
