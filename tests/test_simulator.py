"""Tests for the discrete-event simulator substrate."""

import math

import pytest

from repro.profiling import DeviceProfile, LinkProfile
from repro.simulator import CpuSchedule, Link, Medium, SimNode, Simulator


def make_node(rate=1e9, **kw) -> SimNode:
    return SimNode("n", DeviceProfile("dev", macs_per_second=rate), **kw)


class TestSimulatorCore:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"] and sim.now == 3.0

    def test_equal_times_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(0.5, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 1.5)]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=2.0)
        assert log == [1] and sim.now == 2.0
        sim.run()
        assert log == [1, 5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_event_cancellation(self):
        sim = Simulator()
        log = []
        ev = sim.schedule(1.0, lambda: log.append("x"))
        ev.cancel()
        sim.run()
        assert log == []

    def test_stop_mid_run(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append(1), sim.stop()))
        sim.schedule(2.0, lambda: log.append(2))
        sim.run()
        assert log == [(1, None)] or log == [1]  # stop prevents event 2
        assert 2 not in log

    def test_livelock_guard(self):
        sim = Simulator()

        def respawn():
            sim.schedule(0.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestCpuSchedule:
    def test_default_full_speed(self):
        s = CpuSchedule()
        assert s.factor_at(0.0) == 1.0 and s.factor_at(100.0) == 1.0

    def test_piecewise(self):
        s = CpuSchedule(((10.0, 0.45), (20.0, 1.0)))
        assert s.factor_at(5) == 1.0
        assert s.factor_at(10) == 0.45
        assert s.factor_at(15) == 0.45
        assert s.factor_at(25) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuSchedule(((10.0, 0.5), (5.0, 1.0)))
        with pytest.raises(ValueError):
            CpuSchedule(((1.0, -0.1),))


class TestSimNode:
    def test_constant_rate(self):
        node = make_node(rate=1e9)
        # 1e9 MACs at 1 GMAC/s = 1 s.
        assert node.submit(0.0, 1e9) == pytest.approx(1.0, abs=1e-6)

    def test_fifo_queueing(self):
        node = make_node(rate=1e9)
        t1 = node.submit(0.0, 1e9)
        t2 = node.submit(0.0, 1e9)  # arrives while busy
        assert t2 == pytest.approx(t1 + 1.0, abs=1e-6)

    def test_throttle_slows_work(self):
        """§7.3: cpulimit to 45% mid-computation stretches completion."""
        sched = CpuSchedule(((0.5, 0.5),))
        node = SimNode("n", DeviceProfile("d", 1e9), cpu_schedule=sched)
        # 1e9 MACs: 0.5 s at full speed does half; remaining 0.5e9 at 0.5e9/s = 1 s.
        assert node.submit(0.0, 1e9) == pytest.approx(1.5, abs=1e-6)

    def test_work_after_throttle_lift(self):
        sched = CpuSchedule(((0.0, 0.5), (1.0, 1.0)))
        node = SimNode("n", DeviceProfile("d", 1e9), cpu_schedule=sched)
        # 1e9 MACs: 1 s at half rate does 0.5e9, rest at full = 0.5 s.
        assert node.submit(0.0, 1e9) == pytest.approx(1.5, abs=1e-6)

    def test_failed_node_never_finishes(self):
        node = make_node(rate=1e9, fail_time=0.5)
        assert math.isinf(node.submit(0.0, 1e9))

    def test_zero_rate_throttle_without_recovery(self):
        node = SimNode("n", DeviceProfile("d", 1e9), cpu_schedule=CpuSchedule(((0.0, 0.0),)))
        assert math.isinf(node.submit(0.0, 1e9))

    def test_rate_at(self):
        node = SimNode("n", DeviceProfile("d", 2e9), cpu_schedule=CpuSchedule(((1.0, 0.25),)), fail_time=5.0)
        assert node.rate_at(0.0) == 2e9
        assert node.rate_at(2.0) == 0.5e9
        assert node.rate_at(6.0) == 0.0

    def test_busy_time_accounting(self):
        node = make_node(rate=1e9)
        node.submit(0.0, 1e9)
        node.submit(5.0, 2e9)
        assert node.total_busy_time() == pytest.approx(3.0, abs=1e-3)
        assert node.total_busy_time(until=6.0) == pytest.approx(2.0, abs=1e-3)

    def test_reset(self):
        node = make_node()
        node.submit(0.0, 1e9)
        node.reset()
        assert node.total_busy_time() == 0.0
        assert node.submit(0.0, 1e9) == pytest.approx(1.0, abs=1e-6)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            make_node().submit(0.0, -1.0)

    def test_recovered_node_accepts_work_again(self):
        """Fail-stop with revival: work before the failure completes, work
        spanning the dead window is lost (fail-stop), and work submitted
        after ``recover_time`` runs normally."""
        node = make_node(rate=1e9, fail_time=2.0, recover_time=5.0)
        assert node.submit(0.0, 1e9) == pytest.approx(1.0, abs=1e-6)  # before
        assert math.isinf(node.submit(1.5, 1e9))                      # spans the death
        assert node.submit(6.0, 1e9) == pytest.approx(7.0, abs=1e-6)  # after revival

    def test_is_alive_timeline(self):
        node = make_node(rate=1e9, fail_time=2.0, recover_time=5.0)
        assert node.is_alive(1.0)
        assert not node.is_alive(3.0)
        assert node.is_alive(5.0)
        forever_dead = make_node(rate=1e9, fail_time=2.0)
        assert not forever_dead.is_alive(100.0)

    def test_recover_time_validation(self):
        with pytest.raises(ValueError):
            make_node(recover_time=1.0)  # recovery without a failure
        with pytest.raises(ValueError):
            make_node(fail_time=2.0, recover_time=1.0)  # revives before dying


class TestNetwork:
    def test_link_transfer_time(self):
        link = Link(LinkProfile("l", bandwidth_bps=1e6))
        assert link.transfer(0.0, 1e6) == pytest.approx(1.0)

    def test_link_fifo(self):
        link = Link(LinkProfile("l", bandwidth_bps=1e6))
        t1 = link.transfer(0.0, 1e6)
        t2 = link.transfer(0.0, 1e6)
        assert t2 == pytest.approx(t1 + 1.0)

    def test_medium_shared_contention(self):
        """Two links on one medium serialize — the WiFi model."""
        medium = Medium(LinkProfile("wifi", bandwidth_bps=1e6))
        a = Link(LinkProfile("a", 1e9), medium=medium)
        b = Link(LinkProfile("b", 1e9), medium=medium)
        t1 = a.transfer(0.0, 1e6)
        t2 = b.transfer(0.0, 1e6)
        assert t1 == pytest.approx(1.0) and t2 == pytest.approx(2.0)

    def test_bits_accounted(self):
        medium = Medium(LinkProfile("wifi", bandwidth_bps=1e6))
        medium.transfer(0.0, 500.0)
        medium.transfer(0.0, 700.0)
        assert medium.transferred_bits == 1200.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            Link(LinkProfile("l", 1e6)).transfer(0.0, -1.0)

    def test_overhead_added(self):
        link = Link(LinkProfile("l", bandwidth_bps=1e6, per_message_overhead_s=0.1))
        assert link.transfer(0.0, 1e6) == pytest.approx(1.1)
