"""Tests for training loops, bound search, and progressive retraining."""

import numpy as np
import pytest

import repro.nn as nn
from repro.data import make_classification
from repro.models import vgg_mini
from repro.nn.losses import cross_entropy
from repro.training import (
    TrainConfig,
    evaluate_classification,
    evaluate_detection_cells,
    evaluate_segmentation,
    oneshot_retrain,
    progressive_retrain,
    search_clip_bounds,
    train_epochs,
    train_until_recovered,
)

RNG = np.random.default_rng(47)
CFG = TrainConfig(lr=0.05, batch_size=16)


def trained_mini(seed=0):
    """A small converged classifier shared by the retraining tests."""
    data = make_classification(num_samples=96, num_classes=3, image_size=24, seed=seed)
    train, test = data.split()
    model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2, seed=seed)
    train_epochs(model, train.images, train.labels, cross_entropy, epochs=5, config=CFG)
    return model, train, test


class TestTrainLoop:
    def test_loss_decreases(self):
        data = make_classification(num_samples=64, num_classes=3, image_size=24, seed=2)
        model = vgg_mini(num_classes=3, input_size=24, base_width=6)
        hist = train_epochs(model, data.images, data.labels, cross_entropy, epochs=3, config=CFG)
        assert hist.epoch_losses[-1] < hist.epoch_losses[0]

    def test_zero_epochs_noop(self):
        data = make_classification(num_samples=16, num_classes=2, image_size=24)
        model = vgg_mini(num_classes=2, input_size=24, base_width=4)
        before = model.state_dict()
        train_epochs(model, data.images, data.labels, cross_entropy, epochs=0, config=CFG)
        after = model.state_dict()
        np.testing.assert_array_equal(before["blocks.0.conv.weight"], after["blocks.0.conv.weight"])

    def test_negative_epochs_rejected(self):
        model = vgg_mini(num_classes=2, input_size=24, base_width=4)
        with pytest.raises(ValueError):
            train_epochs(model, np.zeros((4, 3, 24, 24), np.float32), np.zeros(4, int), cross_entropy, epochs=-1)

    def test_model_left_in_eval_mode(self):
        data = make_classification(num_samples=16, num_classes=2, image_size=24)
        model = vgg_mini(num_classes=2, input_size=24, base_width=4)
        train_epochs(model, data.images, data.labels, cross_entropy, epochs=1, config=CFG)
        assert not model.training


class TestMetrics:
    def test_classification_accuracy_perfect_and_chance(self):
        model, train, test = trained_mini()
        acc = evaluate_classification(model, test.images, test.labels)
        assert acc > 0.8  # the synthetic task is easy by design

    def test_segmentation_metrics_bounds(self):
        from repro.data import make_segmentation
        from repro.models import fcn_mini

        d = make_segmentation(num_samples=8, num_classes=3, image_size=24)
        model = fcn_mini(num_classes=3, input_size=24, base_width=4).eval()
        pix, miou = evaluate_segmentation(model, d.images, d.masks)
        assert 0.0 <= pix <= 1.0 and 0.0 <= miou <= 1.0

    def test_detection_f1_bounds(self):
        from repro.data import make_detection
        from repro.models import yolo_mini

        d = make_detection(num_samples=6, num_classes=3, image_size=24, grid_stride=8)
        model = yolo_mini(num_classes=3, input_size=24, base_width=4).eval()
        f1 = evaluate_detection_cells(model, d.images, d.targets)
        assert 0.0 <= f1 <= 1.0


class TestTrainUntilRecovered:
    def test_stops_immediately_if_already_recovered(self):
        model, train, test = trained_mini()
        eval_fn = lambda m: evaluate_classification(m, test.images, test.labels)
        epochs, metric = train_until_recovered(
            model, train.images, train.labels, cross_entropy, eval_fn, target_metric=0.0, max_epochs=5, config=CFG
        )
        assert epochs == 0

    def test_respects_max_epochs(self):
        model, train, test = trained_mini()
        eval_fn = lambda m: 0.0  # never recovers
        epochs, _ = train_until_recovered(
            model, train.images, train.labels, cross_entropy, eval_fn, target_metric=1.0, max_epochs=2, config=CFG
        )
        assert epochs == 2


class TestBoundsSearch:
    def test_sparsity_target_met(self):
        acts = np.maximum(RNG.normal(size=50_000), 0)
        res = search_clip_bounds(acts, target_sparsity=0.8)
        assert res.achieved_sparsity >= 0.75
        assert res.upper > res.lower >= 0.0

    def test_upper_covers_bulk(self):
        acts = np.maximum(RNG.normal(size=50_000), 0)
        res = search_clip_bounds(acts, target_sparsity=0.6)
        assert res.upper >= np.quantile(acts, 0.95)

    def test_higher_target_higher_lower_bound(self):
        acts = np.maximum(RNG.normal(size=50_000), 0)
        lo = search_clip_bounds(acts, target_sparsity=0.6).lower
        hi = search_clip_bounds(acts, target_sparsity=0.9).lower
        assert hi > lo

    def test_validation(self):
        with pytest.raises(ValueError):
            search_clip_bounds(np.zeros(0))
        with pytest.raises(ValueError):
            search_clip_bounds(np.ones(10), target_sparsity=1.0)


class TestProgressiveRetraining:
    def test_algorithm1_stages_in_order(self):
        model, train, test = trained_mini()
        res = progressive_retrain(
            model,
            "2x2",
            train.images,
            train.labels,
            cross_entropy,
            lambda m: evaluate_classification(m, test.images, test.labels),
            max_epochs_per_stage=2,
            config=CFG,
        )
        assert [s.name for s in res.stages] == ["FDSP", "Clipped ReLU", "Quantization"]
        assert res.total_epochs <= 6

    def test_accuracy_recovered_within_margin(self):
        """Figure 10: retrained accuracy within ~1% of the original."""
        model, train, test = trained_mini()
        res = progressive_retrain(
            model,
            "2x2",
            train.images,
            train.labels,
            cross_entropy,
            lambda m: evaluate_classification(m, test.images, test.labels),
            recover_margin=0.02,
            max_epochs_per_stage=4,
            config=CFG,
        )
        assert res.final_metric >= res.baseline_metric - 0.05

    def test_final_model_has_compression(self):
        model, train, test = trained_mini()
        res = progressive_retrain(
            model,
            "2x2",
            train.images,
            train.labels,
            cross_entropy,
            lambda m: evaluate_classification(m, test.images, test.labels),
            max_epochs_per_stage=1,
            config=CFG,
        )
        assert res.model.has_compression
        assert res.bounds is not None and res.bounds.upper > res.bounds.lower

    def test_oneshot_ablation_runs(self):
        model, train, test = trained_mini(seed=3)
        res = oneshot_retrain(
            model,
            "2x2",
            train.images,
            train.labels,
            cross_entropy,
            lambda m: evaluate_classification(m, test.images, test.labels),
            max_epochs=2,
            config=CFG,
        )
        assert res.stages[0].name == "all-at-once"
        assert res.model.has_compression
