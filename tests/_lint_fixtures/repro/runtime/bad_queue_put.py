"""RL002 fixture: ad-hoc objects enqueued on mp queues."""


class NotAMessage:
    pass


def enqueue(task_queue) -> None:
    task_queue.put({"image_id": 3})  # line 9: dict literal on a queue
    task_queue.put(NotAMessage())  # line 10: undeclared class on a queue
