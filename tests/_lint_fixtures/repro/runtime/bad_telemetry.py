"""RL004 fixture: schema drift and swallowed exceptions."""


def record_spans(tel, t0: float) -> None:
    tel.span("warp_drive", t0, 0.1)  # line 5: span name outside the schema


def supervision_step(proc) -> None:
    try:
        proc.poll()
    except Exception:  # line 11: silently swallowed
        pass


def worker_step(q) -> None:
    try:
        q.get_nowait()
    except:  # noqa: E722  # line 18: bare except
        return
