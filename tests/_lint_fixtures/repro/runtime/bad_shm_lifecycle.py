"""RL014 bad fixture: one early-return path drops the acquired slot.

The happy path stores the slot into a ledger (so the purely syntactic
RL003 pairing rule stays silent) — only the CFG walk sees that the
``not tiles`` return leaks it.
"""


def leaky_dispatch(arena, tiles, ledger):
    slot = arena.acquire()
    if slot is None:
        return None
    if not tiles:
        return None
    ledger["slot"] = slot
    return tiles
