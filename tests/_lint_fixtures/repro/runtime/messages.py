"""RL002 fixture: badly-declared queue messages."""

from dataclasses import dataclass

import numpy as np


@dataclass
class LooseMessage:  # line 9: not frozen, no slots
    image_id: int


@dataclass(frozen=True, slots=True)
class ControlWithArray:  # declared fine, but...
    name: str
    payload: np.ndarray  # line 16: raw ndarray on a control-path message
