"""RL009 fixture: off-convention and dynamic metric names."""


def emit(tel, registry, kind: str) -> None:
    tel.count("tiles_dispatched")  # missing adcnn_ prefix
    tel.gauge("adcnn_Window", 2.0)  # uppercase breaks the name charset
    registry.counter(f"adcnn_{kind}_total")  # dynamic name
    tel.observe("adcnn_latency_seconds", 0.5)  # clean: literal, on convention


def command(EmitTelemetry):
    bad = EmitTelemetry("count", "deadline_triggers")  # count op, bad name
    ok = EmitTelemetry("record", "deadline")  # record op carries an event kind
    return bad, ok
