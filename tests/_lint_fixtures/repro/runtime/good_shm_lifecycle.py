"""RL014 good fixture: every path resolves the acquired slot —
None-guard, explicit release on the early return, ledger store on the
happy path, and try/finally for the exception paths."""


def dispatch(arena, tiles, ledger):
    slot = arena.acquire()
    if slot is None:
        return None
    if not tiles:
        arena.release(slot)
        return None
    ledger["slot"] = slot
    return tiles


def guarded(arena, payload):
    slot = arena.acquire()
    try:
        slot.write(payload)
        return slot.name
    finally:
        arena.release(slot)
