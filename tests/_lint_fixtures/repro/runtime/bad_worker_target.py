"""RL006 fixture: closure/bound-method Process targets."""

import multiprocessing as mp


class Cluster:
    def _loop(self) -> None:
        pass

    def spawn(self) -> mp.Process:
        return mp.Process(target=self._loop)  # line 11: bound-method target

    def spawn_lambda(self) -> mp.Process:
        return mp.Process(target=lambda: None)  # line 14: lambda target
