"""RL003 fixture: unpaired shared-memory lifecycles."""

from multiprocessing import shared_memory


def rogue_attach(name: str):
    return shared_memory.SharedMemory(name=name)  # line 7: direct construction


def leaky_acquire(arena) -> None:
    slot = arena.acquire()  # line 11: neither released nor stored
    if slot is None:
        return


def unlink_without_close(shm) -> None:
    shm.unlink()  # line 17: unlink with no close in this function
