"""RL008 fixture: a driver making scheduling decisions behind the controller."""

import numpy as np

from repro.runtime.scheduler import StatisticsCollector, allocate_tiles


def plan(num_tiles: int, rates: np.ndarray, collector: StatisticsCollector) -> np.ndarray:
    allocation = allocate_tiles(num_tiles, rates)
    collector.update(np.maximum(rates, 0.0))
    return allocation


def finalize(received: np.ndarray, window: float, stats: StatisticsCollector) -> None:
    stats.update(received / window)
