"""RL016 fixture: driver tiers constructing clusters directly."""

from repro.runtime import ProcessCluster, ProcessClusterConfig
from repro.runtime.system import ADCNNSystem


def serve_one(model, grid):
    cluster = ProcessCluster(model, grid, config=ProcessClusterConfig())
    return cluster


def simulate(nodes):
    return ADCNNSystem(nodes)


def rebuild(model, grid):
    import repro.runtime as rt

    return rt.ProcessCluster(model, grid)
