"""RL001 fixture: module-level mutable state and RNG misuse."""

import numpy as np

CACHE = {}  # line 5: module-level mutable dict

_RNG = np.random.default_rng(0)  # line 7: import-time RNG construction


def sample(n: int) -> np.ndarray:
    return np.random.rand(n)  # line 11: global NumPy RNG call


def fine(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal(n)  # explicit Generator parameter: clean
