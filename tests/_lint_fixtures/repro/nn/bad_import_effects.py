"""RL007 fixture: import-time side effects in a worker-imported module."""

print("loading module")  # line 3: runs once per forked worker

if __name__ == "__main__":
    print("this one is fine: behind the main guard")
