"""Suppression fixture: every violation here is explicitly disabled."""

import numpy as np

CACHE = {}  # repro-lint: disable=RL001

# repro-lint: disable=RL001
REGISTRY = {}


def sample(n: int) -> np.ndarray:
    return np.random.rand(n)  # repro-lint: disable=RL001
