"""RL005 fixture: float64 creep in a hot kernel."""

import numpy as np


def promote(x: np.ndarray) -> np.ndarray:
    return x.astype(np.float64)  # line 7: float64 attribute


def alloc(n: int) -> np.ndarray:
    return np.zeros(n)  # line 11: allocation without explicit dtype
