"""RL010 fixture: per-tile Python-loop forwards (and benign look-alikes)."""


def looped_forward(separable, x, grid, tiles):
    outs = [separable(t) for t in tiles]
    more = [separable(t) for t in split_tensor(x, grid)]
    for tile_id, tile in enumerate(tiles):
        outs.append(process(tile))
    gen = (quant(clip(seg)) for seg in split_array(x, grid))
    shapes = [t.shape for t in tiles]
    sizes = [len(t) for t in tiles]
    wrapped = [Tensor(t) for t in tiles]
    safe = [forward(b) for b in batches]
    return outs, more, gen, shapes, sizes, wrapped, safe
