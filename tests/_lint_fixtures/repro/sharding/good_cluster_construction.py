"""RL016 fixture: the sanctioned construction paths stay clean."""

from repro.sharding import make_cluster_handle


def serve_one(model, grid, config):
    # Factory construction: supervision can rebuild this cluster.
    return make_cluster_handle(model, grid, config=config, name="shard0")


def adopt_prebuilt(cluster):
    # Accepting a caller-built instance is fine — the caller owns the recipe.
    return cluster


def factory_module(model, grid):
    # The factory module itself carries an explicit, audited suppression.
    from repro.runtime import ProcessCluster

    return ProcessCluster(model, grid)  # repro-lint: disable=RL016
