"""Re-export fixture: the package publishes Thing from its impl module."""

from .impl import Thing

__all__ = ["Thing"]
