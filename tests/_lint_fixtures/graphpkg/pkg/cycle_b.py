"""Other half of the import cycle."""

from .cycle_a import missing_name  # noqa: F401
