"""The defining module behind the package re-export."""


class Thing:
    pass
