"""Half of an import cycle: neither side ever defines missing_name."""

from .cycle_b import missing_name


def from_a():
    return missing_name
