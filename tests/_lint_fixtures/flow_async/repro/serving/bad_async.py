"""RL013 bad fixture: blocking primitives two calls below a coroutine."""

import time


async def submit(frontend):
    return await dispatch(frontend)


async def dispatch(frontend):
    wait_for_slot()
    return frontend


def wait_for_slot():
    time.sleep(0.01)
    drain(None)


def drain(task_queue):
    return task_queue.get()
