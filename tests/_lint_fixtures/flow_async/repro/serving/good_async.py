"""RL013 good fixture: coroutines only touch non-blocking submission;
blocking work is handed over as a function *reference* (to_thread)."""

import asyncio


async def submit(frontend):
    future = enqueue(frontend)
    return await asyncio.wrap_future(future)


def enqueue(frontend):
    frontend.queue.put_nowait("task")
    return frontend.future


async def poll(frontend):
    return await asyncio.to_thread(blocking_fetch, frontend)


def blocking_fetch(frontend):
    return frontend.result_queue.get()
