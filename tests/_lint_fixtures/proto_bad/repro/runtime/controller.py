"""RL011 bad fixture: dead command, unhandled event, dropped dispatch.

TriggerMerge sits in the Command union but the controller never emits it
(dead member); WorkerDied is produced by process_backend but has no
isinstance branch here (unhandled); system.py silently drops ArmDeadline.
"""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ImageReady:
    image_id: int


@dataclass(frozen=True, slots=True)
class ResultReceived:
    image_id: int


@dataclass(frozen=True, slots=True)
class WorkerDied:
    worker: int


@dataclass(frozen=True, slots=True)
class SendBatch:
    image_id: int


@dataclass(frozen=True, slots=True)
class ArmDeadline:
    image_id: int


@dataclass(frozen=True, slots=True)
class TriggerMerge:
    image_id: int


Event = ImageReady | ResultReceived | WorkerDied
Command = SendBatch | ArmDeadline | TriggerMerge


class CentralController:
    def handle(self, event: object) -> list[object]:
        if isinstance(event, ImageReady):
            return [SendBatch(event.image_id), ArmDeadline(event.image_id)]
        if isinstance(event, ResultReceived):
            return []
        raise TypeError(f"unknown event {event!r}")
