"""Forking driver fixture: emits an event the controller never handles,
and assigns TileTask.slot which no consumer ever reads."""

from .controller import (
    ArmDeadline,
    CentralController,
    ImageReady,
    SendBatch,
    TriggerMerge,
    WorkerDied,
)
from .messages import TileResult, TileTask


def run(controller: CentralController) -> None:
    for cmd in controller.handle(ImageReady(0)):
        if isinstance(cmd, SendBatch):
            emit(TileTask(0, 1, slot="s0"))
        elif isinstance(cmd, ArmDeadline):
            note(WorkerDied(3))
        elif isinstance(cmd, TriggerMerge):
            continue


def emit(task: TileTask) -> int:
    result = TileResult(task.image_id, task.tile_id, b"")
    stamp = result.trace["t_end"]
    return len(result.payload) + stamp


def note(event: object) -> object:
    return event
