"""In-process driver fixture that silently drops ArmDeadline: the
controller can arm a deadline, but this backend never acts on it."""

from .controller import CentralController, ImageReady, ResultReceived, SendBatch, TriggerMerge


def execute(controller: CentralController) -> None:
    for cmd in controller.handle(ImageReady(0)):
        if isinstance(cmd, SendBatch):
            note(ResultReceived(cmd.image_id))
        elif isinstance(cmd, TriggerMerge):
            continue


def note(event: object) -> object:
    return event
