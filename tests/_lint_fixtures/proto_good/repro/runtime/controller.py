"""RL011 good fixture: a closed protocol, fully dispatched everywhere."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ImageReady:
    image_id: int


@dataclass(frozen=True, slots=True)
class ResultReceived:
    image_id: int


@dataclass(frozen=True, slots=True)
class SendBatch:
    image_id: int


@dataclass(frozen=True, slots=True)
class ArmDeadline:
    image_id: int


Event = ImageReady | ResultReceived
Command = SendBatch | ArmDeadline


class CentralController:
    def handle(self, event: object) -> list[object]:
        if isinstance(event, ImageReady):
            return [SendBatch(event.image_id), ArmDeadline(event.image_id)]
        if isinstance(event, ResultReceived):
            return []
        raise TypeError(f"unknown event {event!r}")
