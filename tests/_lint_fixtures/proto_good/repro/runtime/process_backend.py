"""Forking driver fixture: dispatches every command, produces both events."""

from .controller import (
    ArmDeadline,
    CentralController,
    ImageReady,
    ResultReceived,
    SendBatch,
)
from .messages import TileResult, TileTask


def run(controller: CentralController) -> None:
    events: list[object] = [ImageReady(0)]
    while events:
        for cmd in controller.handle(events.pop()):
            if isinstance(cmd, SendBatch):
                consume_task(TileTask(0, 1, slot="s0"))
            elif isinstance(cmd, ArmDeadline):
                events.append(ResultReceived(cmd.image_id))


def consume_task(task: TileTask) -> tuple[int, int, bytes, str | None]:
    result = TileResult(task.image_id, task.tile_id, b"")
    return (result.image_id, result.tile_id, result.payload, task.slot)
