"""In-process driver fixture: the same full command dispatch, no forking."""

from .controller import ArmDeadline, CentralController, ImageReady, SendBatch
from .messages import TileTask


def execute(controller: CentralController) -> list[TileTask]:
    tasks: list[TileTask] = []
    for cmd in controller.handle(ImageReady(0)):
        if isinstance(cmd, SendBatch):
            tasks.append(TileTask(cmd.image_id, 0))
        elif isinstance(cmd, ArmDeadline):
            continue
    return tasks
