"""RL012 good fixture: every produced field is consumed and vice versa."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TileTask:
    image_id: int
    tile_id: int
    slot: str | None = None


@dataclass(frozen=True, slots=True)
class TileResult:
    image_id: int
    tile_id: int
    payload: bytes
