"""Telemetry subsystem tests: metrics, exporters, both backends' spans.

Covers the observability acceptance criteria: Chrome traces validate
against the trace-event schema with one track per node, Prometheus text
re-parses to the same samples, JSONL round-trips, the process backend and
the DES emit the same event kinds, and the `StatisticsCollector` EWMA /
probe cadence behaves as Algorithm 2 + the recovery-probe extension say.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import StatisticsCollector
from repro.telemetry import (
    STAGE_CENTRAL,
    STAGE_CONV_COMPUTE,
    STAGE_MERGE,
    STAGE_PARTITION,
    STAGE_RESULT_TRANSFER,
    STAGE_TRANSFER,
    STAGES,
    MetricsRegistry,
    NullRecorder,
    TelemetryRecorder,
    parse_prometheus_text,
    prometheus_text,
    read_jsonl,
    summarize,
    to_chrome_trace,
    validate_chrome_trace,
    write_jsonl,
)

#: The stage kinds both backends must emit (``compress`` is process-backend
#: only: the DES folds compression into the result byte count).
COMMON_STAGES = (
    STAGE_PARTITION,
    STAGE_TRANSFER,
    STAGE_CONV_COMPUTE,
    STAGE_RESULT_TRANSFER,
    STAGE_MERGE,
    STAGE_CENTRAL,
)


class TestStatisticsCollectorEWMA:
    @settings(max_examples=30, deadline=None)
    @given(
        counts=st.lists(st.floats(0.0, 64.0), min_size=1, max_size=6),
        gamma=st.floats(0.05, 1.0),
        initial=st.floats(0.0, 10.0),
    )
    def test_converges_to_constant_counts(self, counts, gamma, initial):
        """Feeding a constant n_k drives s_k -> n_k geometrically: the
        residual after N updates is exactly (1-gamma)^N * |s0 - n_k|."""
        s = StatisticsCollector(len(counts), gamma=gamma, initial=initial)
        n = 200
        for _ in range(n):
            s.update(counts)
        bound = (1 - gamma) ** n * np.abs(initial - np.asarray(counts)) + 1e-9
        assert (np.abs(s.rates() - counts) <= bound).all()

    @settings(max_examples=30, deadline=None)
    @given(
        gamma=st.floats(0.05, 0.95),
        lo=st.floats(1.0, 4.0),
        hi=st.floats(5.0, 16.0),
    )
    def test_estimate_stays_in_observed_range(self, gamma, lo, hi):
        """EWMA is a convex combination: s_k never leaves [min, max] of
        what it has seen (including the seed)."""
        s = StatisticsCollector(1, gamma=gamma, initial=lo)
        rng = np.random.default_rng(0)
        for _ in range(50):
            s.update([rng.uniform(lo, hi)])
            assert lo - 1e-9 <= s.rates()[0] <= hi + 1e-9

    def test_update_counts_monotonic_effect(self):
        """One update moves the estimate toward the observation by gamma."""
        s = StatisticsCollector(1, gamma=0.25, initial=0.0)
        s.update([8.0])
        assert s.rates()[0] == pytest.approx(2.0)


class TestProbeCadence:
    def test_probe_due_requires_interval(self):
        s = StatisticsCollector(2, probe_interval=0)
        assert s.probe_due([True, True], [0, 0]) == []

    def test_probe_cadence(self):
        """A starved-but-alive node is due exactly every probe_interval
        updates, and note_probe resets its clock."""
        s = StatisticsCollector(2, probe_interval=3)
        alive = [True, True]
        for _ in range(3):  # not due until probe_interval updates elapse
            assert s.probe_due(alive, [4, 0]) == []
            s.update([4, 0])
        assert s.probe_due(alive, [4, 0]) == [1]
        s.note_probe(1)
        assert s.probe_due(alive, [4, 0]) == []
        for _ in range(2):
            s.update([4, 0])
            assert s.probe_due(alive, [4, 0]) == []
        s.update([4, 0])
        assert s.probe_due(alive, [4, 0]) == [1]

    def test_dead_or_allocated_nodes_never_due(self):
        s = StatisticsCollector(2, probe_interval=1)
        s.update([4, 0])
        assert s.probe_due([True, False], [4, 0]) == []   # dead
        assert s.probe_due([True, True], [4, 1]) == [] 	  # already allocated

    def test_validation(self):
        s = StatisticsCollector(2, probe_interval=1)
        with pytest.raises(ValueError):
            s.probe_due([True], [0, 0])


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("x_total", node="a").inc()
        reg.counter("x_total", node="a").inc(2)
        reg.counter("x_total", node="b").inc(5)
        reg.gauge("share", node="a").set(1.5)
        for v in range(100):
            reg.histogram("lat_seconds").observe(v / 100)
        assert reg.counter_value("x_total", node="a") == 3
        assert reg.counter_total("x_total") == 8
        h = reg.histogram("lat_seconds")
        assert h.count == 100
        assert h.quantile(0.5) == pytest.approx(0.495, abs=0.02)
        assert h.quantile(0.99) == pytest.approx(0.98, abs=0.02)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").inc()
        reg.counter("x", b="2", a="1").inc()
        assert reg.counter_value("x", a="1", b="2") == 2


class TestRecorder:
    def test_null_recorder_is_inert(self):
        n = NullRecorder()
        n.record(0.0, "x")
        n.span("partition", 0.0, 1.0)
        n.count("c")
        n.gauge("g", 1.0)
        n.observe("h", 1.0)
        assert not n.enabled and len(n) == 0 and n.of_kind("x") == []

    def test_span_feeds_stage_histogram(self):
        t = TelemetryRecorder()
        t.span(STAGE_CONV_COMPUTE, 0.0, 0.5, node="n1", image_id=0)
        t.span(STAGE_CONV_COMPUTE, 1.0, 1.5, node="n1", image_id=1)
        h = t.metrics.histogram("adcnn_stage_seconds", stage=STAGE_CONV_COMPUTE)
        assert h.count == 2 and h.sum == pytest.approx(2.0)
        assert len(t.spans(STAGE_CONV_COMPUTE)) == 2

    def test_trace_recorder_alias(self):
        from repro.simulator import TraceRecorder

        assert TraceRecorder is TelemetryRecorder


def _sample_recorder() -> TelemetryRecorder:
    t = TelemetryRecorder()
    t.record(0.0, "dispatch", image_id=0, allocation=[2, 2])
    t.span(STAGE_PARTITION, 0.0, 0.001, node="central", image_id=0)
    t.span(STAGE_TRANSFER, 0.001, 0.01, node="worker0", image_id=0)
    t.span(STAGE_CONV_COMPUTE, 0.011, 0.02, node="worker0", image_id=0)
    t.span(STAGE_RESULT_TRANSFER, 0.031, 0.004, node="worker0", image_id=0)
    t.span(STAGE_MERGE, 0.035, 0.001, node="central", image_id=0, zero_filled=0)
    t.span(STAGE_CENTRAL, 0.036, 0.01, node="central", image_id=0)
    t.record(0.046, "image_done", image_id=0, latency=0.046, zero_filled=0)
    t.count("adcnn_tiles_dispatched_total", 4, node="worker0")
    t.count("adcnn_bits_wire_total", 1000, direction="down")
    t.count("adcnn_bits_raw_total", 32000, direction="down")
    t.gauge("adcnn_scheduler_share", 7.5, node="worker0")
    return t


class TestChromeTraceExport:
    def test_valid_and_one_track_per_node(self):
        trace = _sample_recorder().chrome_trace()
        events = validate_chrome_trace(trace)
        names = {e["args"]["name"] for e in events if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert names == {"central", "worker0"}
        # one tid per node
        tids = {e["tid"] for e in events if e.get("ph") == "X"}
        assert len(tids) == 2

    def test_span_vs_instant_phases(self):
        trace = _sample_recorder().chrome_trace()
        by_name = {}
        for e in trace["traceEvents"]:
            by_name.setdefault(e["name"], set()).add(e["ph"])
        assert by_name[STAGE_CONV_COMPUTE] == {"X"}
        assert by_name["image_done"] == {"i"}

    def test_times_rebased_to_microseconds(self):
        t = TelemetryRecorder()
        t.span(STAGE_CONV_COMPUTE, 1000.5, 0.25, node="n")
        ev = [e for e in t.chrome_trace()["traceEvents"] if e["ph"] == "X"][0]
        assert ev["ts"] == 0.0 and ev["dur"] == pytest.approx(0.25e6)

    def test_json_serializable(self):
        json.dumps(_sample_recorder().chrome_trace())

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"nope": 1})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "n", "ts": 0, "pid": 0, "tid": 1}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z", "name": "n"}]})

    def test_numpy_args_serializable(self):
        t = TelemetryRecorder()
        t.record(0.0, "dispatch", allocation=np.array([1, 2]), n=np.int64(3))
        json.dumps(to_chrome_trace(t.events), default=lambda o: o.tolist() if hasattr(o, "tolist") else o)


class TestPrometheusRoundTrip:
    def test_reparses_to_same_samples(self):
        t = _sample_recorder()
        text = t.prometheus()
        samples = parse_prometheus_text(text)
        assert samples[("adcnn_tiles_dispatched_total", frozenset({("node", "worker0")}))] == 4
        assert samples[("adcnn_bits_wire_total", frozenset({("direction", "down")}))] == 1000
        assert samples[("adcnn_scheduler_share", frozenset({("node", "worker0")}))] == 7.5
        # histogram summary series: quantiles + count + sum
        key_count = ("adcnn_stage_seconds_count", frozenset({("stage", STAGE_CONV_COMPUTE)}))
        assert samples[key_count] == 1
        q50 = ("adcnn_stage_seconds", frozenset({("stage", STAGE_CONV_COMPUTE), ("quantile", "0.5")}))
        assert samples[q50] == pytest.approx(0.02)

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", path='a"b\\c').inc()
        samples = parse_prometheus_text(prometheus_text(reg))
        assert samples[("x_total", frozenset({("path", 'a"b\\c')}))] == 1

    def test_every_line_parses(self):
        for line in _sample_recorder().prometheus().splitlines():
            parse_prometheus_text(line)  # raises on malformed lines


class TestJsonlRoundTrip:
    def test_events_and_metrics_survive(self, tmp_path):
        t = _sample_recorder()
        path = tmp_path / "run.jsonl"
        t.write_jsonl(path)
        events, metric_rows = read_jsonl(path)
        assert len(events) == len(t.events)
        assert events[0]["kind"] == "dispatch"
        counters = {r["name"] for r in metric_rows if r["metric_kind"] == "counter"}
        assert "adcnn_bits_wire_total" in counters
        hists = [r for r in metric_rows if r["metric_kind"] == "histogram"]
        assert any("p95" in r for r in hists)

    def test_numpy_values_serialize(self, tmp_path):
        t = TelemetryRecorder()
        t.record(0.0, "dispatch", allocation=np.array([1, 2]), count=np.int32(7))
        path = tmp_path / "np.jsonl"
        write_jsonl(t.events, path)
        events, _ = read_jsonl(path)
        assert events[0]["allocation"] == [1, 2] and events[0]["count"] == 7


class TestSummarize:
    def test_summary_quantities(self):
        t = _sample_recorder()
        summary = summarize(t.events, t.metrics.snapshot())
        assert summary.images == 1
        assert summary.mean_latency_s == pytest.approx(0.046)
        assert summary.compression_ratio == pytest.approx(1000 / 32000)
        stages = {s.stage for s in summary.stages}
        assert STAGE_CONV_COMPUTE in stages and STAGE_MERGE in stages
        assert 0 < summary.utilization["worker0"] <= 1

    def test_render_smoke(self):
        from repro.telemetry.report import render

        t = _sample_recorder()
        out = render(summarize(t.events, t.metrics.snapshot()))
        assert "conv_compute" in out and "utilization" in out

    def test_node_utilization_merges_overlapping_spans(self):
        from repro.telemetry.report import node_utilization

        # Regression: pipelined images overlap compute spans on one node;
        # summing raw durations used to report >100% busy.
        t = TelemetryRecorder()
        t.record(0.0, "dispatch")  # pins the run-window start
        t.span("conv_compute", 0.0, 8.0, node="worker0")
        t.span("conv_compute", 4.0, 6.0, node="worker0")  # overlaps [4, 8]
        t.span("compress", 9.0, 1.0, node="worker0")  # disjoint tail
        t.span("conv_compute", 0.0, 30.0, node="worker1")  # would be 300%
        t.span("conv_compute", 5.0, 5.0, node="worker1")  # fully nested
        t.record(10.0, "image_done")
        util = node_utilization(t.events)
        # worker0: union([0,8] ∪ [4,10]) = [0,10] -> 10 busy over window 30.
        assert util["worker0"] == pytest.approx(10.0 / 30.0)
        assert util["worker1"] == pytest.approx(1.0)
        assert all(0.0 <= u <= 1.0 for u in util.values())


class TestDesBackendTelemetry:
    def test_same_event_kinds_as_process_backend(self):
        from repro.experiments.common import build_adcnn_system

        tel = TelemetryRecorder()
        system = build_adcnn_system("vgg16", num_nodes=4, telemetry=tel)
        records = system.run(4)
        kinds = {e["kind"] for e in tel.events}
        for stage in COMMON_STAGES:
            assert stage in kinds, f"DES missing {stage}"
        assert "dispatch" in kinds and "image_done" in kinds
        # latency in telemetry matches the records
        done = sorted(tel.of_kind("image_done"), key=lambda e: e["image_id"])
        for e, r in zip(done, records):
            assert e["latency"] == pytest.approx(r.latency)
        validate_chrome_trace(tel.chrome_trace())
        # bits on the wire match the media accounting
        wire = tel.metrics.counter_total("adcnn_bits_wire_total")
        assert wire == pytest.approx(system.total_transferred_bits())

    def test_telemetry_does_not_change_simulation(self):
        from repro.experiments.common import build_adcnn_system

        base = build_adcnn_system("resnet34", num_nodes=3).run(3)
        with_tel = build_adcnn_system("resnet34", num_nodes=3, telemetry=TelemetryRecorder()).run(3)
        for a, b in zip(base, with_tel):
            assert a.latency == pytest.approx(b.latency, rel=1e-12)
            np.testing.assert_array_equal(a.allocation, b.allocation)

    def test_scheduler_share_gauges_present(self):
        from repro.experiments.common import build_adcnn_system

        tel = TelemetryRecorder()
        build_adcnn_system("vgg16", num_nodes=2, telemetry=tel).run(2)
        assert math.isfinite(tel.metrics.gauge("adcnn_scheduler_share", node="conv1").value)


@pytest.fixture(scope="module")
def process_run():
    """One telemetry-recorded 2-worker process-backend stream, shared by
    the assertions below (cluster startup dominates test time)."""
    from repro.compression import CompressionPipeline
    from repro.models import vgg_mini
    from repro.runtime import ProcessCluster, ProcessClusterConfig

    model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()
    rng = np.random.default_rng(7)
    images = [rng.normal(size=(1, 3, 24, 24)).astype(np.float32) for _ in range(3)]
    tel = TelemetryRecorder()
    cfg = ProcessClusterConfig(num_workers=2, t_limit=30.0)
    with ProcessCluster(model, "2x2", pipeline=CompressionPipeline(), config=cfg,
                        telemetry=tel) as cluster:
        outcomes = cluster.infer_stream(images, pipeline_depth=2)
    return tel, outcomes


class TestProcessBackendTelemetry:
    def test_all_stage_spans_present(self, process_run):
        tel, _ = process_run
        kinds = {e["kind"] for e in tel.events}
        for stage in STAGES:  # including compress — the pipeline is on
            assert stage in kinds, f"process backend missing {stage}"

    def test_chrome_trace_one_track_per_node(self, process_run):
        tel, _ = process_run
        events = validate_chrome_trace(tel.chrome_trace())
        tracks = {e["args"]["name"] for e in events if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert tracks == {"central", "worker0", "worker1"}

    def test_worker_timings_propagated_to_outcome(self, process_run):
        _, outcomes = process_run
        for out in outcomes:
            assert out.compute_seconds_per_worker.shape == (2,)
            assert out.wall_seconds_per_worker.shape == (2,)
            # every tile was computed somewhere, so some worker was busy
            assert out.compute_seconds_per_worker.sum() > 0
            assert out.wall_seconds_per_worker.sum() > 0
            # worker-side busy time cannot exceed the image's wall time by
            # more than the 2x parallelism
            assert out.wall_seconds_per_worker.max() <= out.wall_seconds + 1e-6

    def test_wire_accounting_uses_real_compression(self, process_run):
        tel, _ = process_run
        wire = tel.metrics.counter_value("adcnn_bits_wire_total", direction="down")
        raw = tel.metrics.counter_value("adcnn_bits_raw_total", direction="down")
        assert 0 < wire < raw  # RLE+quantization actually shrank results

    def test_image_latency_histogram(self, process_run):
        tel, outcomes = process_run
        h = tel.metrics.histogram("adcnn_image_latency_seconds")
        assert h.count == len(outcomes)

    def test_spans_nest_inside_run_window(self, process_run):
        tel, _ = process_run
        times = [e["time"] for e in tel.events]
        span_ends = [e["time"] + e["duration"] for e in tel.events if "duration" in e]
        assert min(times) >= 0 and max(span_ends) >= max(times)
        for e in tel.events:
            if "duration" in e:
                assert e["duration"] >= 0


class TestOutcomeTimingsWithoutTelemetry:
    def test_timings_present_with_null_recorder(self):
        """Satellite: compute/wall seconds survive into the outcome even
        with telemetry disabled — the protocol always carries them."""
        from repro.models import vgg_mini
        from repro.runtime import ProcessCluster, ProcessClusterConfig

        model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()
        img = np.random.default_rng(3).normal(size=(1, 3, 24, 24)).astype(np.float32)
        with ProcessCluster(model, "2x2", config=ProcessClusterConfig(num_workers=2, t_limit=30.0)) as c:
            out = c.infer(img)
        assert out.compute_seconds_per_worker.sum() > 0
        assert out.wall_seconds_per_worker.sum() > 0
