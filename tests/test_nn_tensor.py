"""Unit tests for the autograd tensor core."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor, no_grad
from repro.nn.tensor import is_grad_enabled

from gradcheck import check_grad

RNG = np.random.default_rng(42)


class TestBasics:
    def test_construction_casts_to_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_item_and_numpy(self):
        t = Tensor([[3.5]])
        assert t.item() == 3.5
        assert t.numpy() is t.data

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        c = (b * 3).sum()
        c.backward()
        assert a.grad is None

    def test_parameter_requires_grad(self):
        p = Parameter(np.ones(3))
        assert p.requires_grad

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(4), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            a = Tensor([1.0], requires_grad=True)
            b = a * 2
            assert not b.requires_grad
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add(self):
        check_grad(lambda t: (t + t * 2).sum(), RNG.normal(size=(3, 4)))

    def test_add_broadcast(self):
        other = Tensor(RNG.normal(size=(1, 4)))
        check_grad(lambda t: (t + other).sum(), RNG.normal(size=(3, 4)))

    def test_mul(self):
        other = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda t: (t * other).sum(), RNG.normal(size=(3, 4)))

    def test_sub_and_neg(self):
        check_grad(lambda t: (-(t - 3.0)).sum(), RNG.normal(size=(5,)))

    def test_div(self):
        other = Tensor(RNG.uniform(1.0, 2.0, size=(3, 4)))
        check_grad(lambda t: (t / other).sum(), RNG.normal(size=(3, 4)))

    def test_rdiv(self):
        check_grad(lambda t: (1.0 / t).sum(), RNG.uniform(1.0, 2.0, size=(4,)))

    def test_pow(self):
        check_grad(lambda t: (t**3).sum(), RNG.uniform(0.5, 1.5, size=(4,)))

    def test_matmul(self):
        other = Tensor(RNG.normal(size=(4, 2)))
        check_grad(lambda t: (t @ other).sum(), RNG.normal(size=(3, 4)))

    def test_matmul_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones((2, 2, 2))) @ Tensor(np.ones((2, 2)))

    def test_grad_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        out = (a * 3 + a * 4).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [7.0])


class TestShapeOps:
    def test_reshape(self):
        check_grad(lambda t: (t.reshape(6) * Tensor(np.arange(6.0))).sum(), RNG.normal(size=(2, 3)))

    def test_flatten_from(self):
        t = Tensor(np.ones((2, 3, 4)))
        assert t.flatten_from(1).shape == (2, 12)

    def test_transpose(self):
        const = Tensor(RNG.normal(size=(4, 3)))
        check_grad(lambda t: (t.transpose((1, 0)) * const).sum(), RNG.normal(size=(3, 4)))

    def test_getitem(self):
        check_grad(lambda t: t[1:3].sum(), RNG.normal(size=(5, 2)))

    def test_concatenate(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))


class TestReductions:
    def test_sum_axis(self):
        check_grad(lambda t: (t.sum(axis=0) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        check_grad(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), RNG.normal(size=(3, 4)))

    def test_mean(self):
        check_grad(lambda t: t.mean(), RNG.normal(size=(3, 4)))

    def test_mean_tuple_axis(self):
        check_grad(lambda t: (t.mean(axis=(0, 2)) ** 2).sum(), RNG.normal(size=(2, 3, 4)))

    def test_max(self):
        x = np.arange(12.0).reshape(3, 4)  # unique values: no tie-splitting
        check_grad(lambda t: t.max(axis=1).sum(), x)

    def test_max_value(self):
        t = Tensor([[1.0, 5.0], [3.0, 2.0]])
        np.testing.assert_allclose(t.max(axis=1).data, [5.0, 3.0])


class TestNonlinearities:
    def test_exp(self):
        check_grad(lambda t: t.exp().sum(), RNG.normal(size=(4,)))

    def test_log(self):
        check_grad(lambda t: t.log().sum(), RNG.uniform(0.5, 2.0, size=(4,)))

    def test_sqrt(self):
        check_grad(lambda t: t.sqrt().sum(), RNG.uniform(0.5, 2.0, size=(4,)))

    def test_tanh(self):
        check_grad(lambda t: t.tanh().sum(), RNG.normal(size=(4,)))

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid().sum(), RNG.normal(size=(4,)))

    def test_relu_forward(self):
        t = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(t.relu().data, [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        x = RNG.normal(size=(10,))
        x[np.abs(x) < 0.1] = 0.5  # avoid the kink
        check_grad(lambda t: t.relu().sum(), x)


class TestClippedReLU:
    """Paper §4.1 — ReLU_[a,b]."""

    def test_piecewise_values(self):
        t = Tensor([-1.0, 0.1, 0.5, 1.5, 3.0])
        out = t.clipped_relu(0.2, 2.0)
        np.testing.assert_allclose(out.data, [0.0, 0.0, 0.3, 1.3, 1.8], atol=1e-6)

    def test_output_bounded(self):
        t = Tensor(RNG.normal(scale=5.0, size=(100,)))
        out = t.clipped_relu(0.5, 2.5).data
        assert out.min() >= 0.0 and out.max() <= 2.0

    def test_grad_inside_only(self):
        x = np.array([-1.0, 1.0, 5.0])
        t = Tensor(x, requires_grad=True)
        t.clipped_relu(0.0, 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Tensor([1.0]).clipped_relu(2.0, 1.0)

    def test_paper_figure6_example(self):
        """Figure 6 applies ReLU_(0.2, 2) and keeps values in [0, 1.8]."""
        ofmap = Tensor(RNG.uniform(-1, 4, size=(4, 4)))
        out = ofmap.clipped_relu(0.2, 2.0).data
        assert out.max() <= 1.8 + 1e-6


class TestQuantizeSTE:
    def test_values_on_grid(self):
        t = Tensor(RNG.uniform(0, 1.5, size=(50,)))
        step = 0.1
        q = t.quantize_ste(step, 16).data
        np.testing.assert_allclose(q / step, np.rint(q / step), atol=1e-5)

    def test_clamps_to_levels(self):
        t = Tensor([10.0])
        q = t.quantize_ste(0.1, 16).data
        np.testing.assert_allclose(q, [1.5])

    def test_straight_through_gradient(self):
        t = Tensor(RNG.uniform(0, 1, size=(5,)), requires_grad=True)
        t.quantize_ste(0.1, 16).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(5))

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            Tensor([1.0]).quantize_ste(0.0, 16)


class TestGraphMechanics:
    def test_diamond_graph(self):
        a = Tensor([3.0], requires_grad=True)
        b = a * 2
        c = a * 5
        out = (b + c).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_deep_chain_iterative_toposort(self):
        # Would overflow a recursive topo-sort.
        t = Tensor([1.0], requires_grad=True)
        x = t
        for _ in range(5000):
            x = x + 0.0
        x.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2
        out.backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.grad, [2.0, 4.0, 6.0])
