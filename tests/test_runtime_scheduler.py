"""Tests for Algorithms 2 and 3 (statistics collection, tile allocation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from allocation_oracle import brute_force_allocation

from repro.runtime import (
    SchedulingError,
    StatisticsCollector,
    allocate_tiles,
)


class TestStatisticsCollector:
    def test_initial_equal(self):
        s = StatisticsCollector(4, initial=1.0)
        np.testing.assert_allclose(s.rates(), np.ones(4))

    def test_ewma_update_formula(self):
        """Algorithm 2 line 6: s_k = (1-γ)s_k + γ n_k."""
        s = StatisticsCollector(2, gamma=0.9, initial=1.0)
        s.update([8, 4])
        np.testing.assert_allclose(s.rates(), [0.1 + 7.2, 0.1 + 3.6])

    def test_converges_to_steady_counts(self):
        s = StatisticsCollector(2, gamma=0.9, initial=1.0)
        for _ in range(20):
            s.update([8, 2])
        np.testing.assert_allclose(s.rates(), [8, 2], atol=1e-3)

    def test_failed_node_decays_to_zero(self):
        """§6.3: if node k fails, s_k becomes ~0 and gets no tiles."""
        s = StatisticsCollector(2, gamma=0.9, initial=8.0)
        for _ in range(10):
            s.update([8, 0])
        rates = s.rates()
        assert rates[1] < 1e-8
        x = allocate_tiles(16, rates)
        assert x[1] == 0 and x[0] == 16

    def test_rates_is_copy(self):
        s = StatisticsCollector(2)
        s.rates()[0] = 99
        assert s.rates()[0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StatisticsCollector(0)
        with pytest.raises(ValueError):
            StatisticsCollector(2, gamma=0.0)
        with pytest.raises(ValueError):
            StatisticsCollector(2, initial=-1)
        s = StatisticsCollector(2)
        with pytest.raises(ValueError):
            s.update([1, 2, 3])
        with pytest.raises(ValueError):
            s.update([1, -2])


class TestAllocateTiles:
    def test_even_split_on_equal_rates(self):
        x = allocate_tiles(64, np.ones(8))
        np.testing.assert_array_equal(x, np.full(8, 8))

    def test_proportional_to_rates(self):
        x = allocate_tiles(12, [2.0, 1.0])
        assert tuple(x) == (8, 4)

    def test_sum_constraint(self):
        x = allocate_tiles(17, [3.0, 1.0, 2.0])
        assert x.sum() == 17

    def test_figure15_allocation_shape(self):
        """§7.3: after throttling nodes 5-8 (-55%, -55%, -76%, -76%), the
        allocation becomes 12,12,12,12,5,5,3,3."""
        rates = np.array([8, 8, 8, 8, 8 * 0.45, 8 * 0.45, 8 * 0.24, 8 * 0.24])
        x = allocate_tiles(64, rates)
        assert x.sum() == 64
        assert all(x[i] == x[0] for i in range(4))
        assert x[0] in (11, 12, 13)
        assert x[4] in (4, 5, 6) and x[6] in (2, 3, 4)
        assert x[0] > x[4] > x[6]

    def test_storage_constraint(self):
        """Eq. (1): M x_k <= H_k caps a node's tiles."""
        x = allocate_tiles(10, [1.0, 1.0], tile_bits=100, storage_bits=[200, 1e9])
        assert x[0] <= 2 and x.sum() == 10

    def test_all_storage_exhausted_raises(self):
        with pytest.raises(SchedulingError):
            allocate_tiles(10, [1.0, 1.0], tile_bits=100, storage_bits=[200, 200])

    def test_all_dead_raises(self):
        with pytest.raises(SchedulingError):
            allocate_tiles(4, [0.0, 0.0])

    def test_zero_tiles(self):
        np.testing.assert_array_equal(allocate_tiles(0, [1.0, 1.0]), [0, 0])

    def test_random_tie_break(self):
        rng = np.random.default_rng(0)
        x = allocate_tiles(1, np.ones(4), rng=rng)
        assert x.sum() == 1

    def test_deterministic_without_rng(self):
        a = allocate_tiles(7, [1.0, 1.0, 1.0])
        b = allocate_tiles(7, [1.0, 1.0, 1.0])
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_tiles(-1, [1.0])
        with pytest.raises(ValueError):
            allocate_tiles(1, [1.0], tile_bits=1, storage_bits=[1, 2])

    @settings(max_examples=40, deadline=None)
    @given(
        num_tiles=st.integers(1, 12),
        rates=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=4),
    )
    def test_greedy_matches_brute_force_makespan(self, num_tiles, rates):
        """Greedy list scheduling is optimal for unit jobs on uniform
        machines — verify the min-max objective against brute force."""
        rates = np.asarray(rates)
        greedy = allocate_tiles(num_tiles, rates)
        exact = brute_force_allocation(num_tiles, rates)
        greedy_cost = max(greedy[i] / rates[i] for i in range(len(rates)))
        exact_cost = max(exact[i] / rates[i] for i in range(len(rates)))
        assert greedy_cost == pytest.approx(exact_cost, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        num_tiles=st.integers(0, 50),
        rates=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=8),
    )
    def test_allocation_invariants_property(self, num_tiles, rates):
        x = allocate_tiles(num_tiles, np.asarray(rates))
        assert x.sum() == num_tiles
        assert (x >= 0).all()
