"""The resource sanitizer itself: deliberately-leaky demo tests (strict
xfail — the sanitizer MUST fail them) plus marker/cleanup semantics."""

import multiprocessing as mp
import os
import time
from multiprocessing import shared_memory

import pytest

needs_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory unavailable"
)

#: Deliberately-staged leaks handed from one test to its cleanup partner.
_STAGED_SHM: list[str] = []
_STAGED_FDS: list[int] = []


def test_sanitizer_plugin_is_active(request):
    assert request.config.pluginmanager.hasplugin("sanitizer")


@pytest.mark.xfail(
    strict=True, reason="deliberately leaks a child process; the sanitizer must fail this test"
)
def test_sanitizer_flags_leaked_child_process():
    proc = mp.get_context("fork").Process(target=time.sleep, args=(60,), daemon=True)
    proc.start()
    # ... and never join/terminate: the sanitizer reports it and reaps it.


@needs_shm
@pytest.mark.xfail(
    strict=True, reason="deliberately leaks a shm segment; the sanitizer must fail this test"
)
def test_sanitizer_flags_leaked_shm_segment():
    seg = shared_memory.SharedMemory(create=True, size=64)
    seg.close()
    # ... and never unlink: the segment outlives the test until the
    # sanitizer unlinks it during cleanup.


@pytest.mark.xfail(
    strict=True, reason="deliberately leaks fds beyond tolerance; the sanitizer must fail this test"
)
def test_sanitizer_flags_leaked_fds():
    for _ in range(8):
        _STAGED_FDS.extend(os.pipe())


def test_cleanup_staged_fds():
    # Closing fds only shrinks the count; the sanitizer flags growth.
    while _STAGED_FDS:
        fd = _STAGED_FDS.pop()
        try:
            os.close(fd)
        except OSError:
            pass


@needs_shm
@pytest.mark.allow_leaks
def test_allow_leaks_marker_suppresses_sanitizer():
    seg = shared_memory.SharedMemory(create=True, size=16)
    seg.close()
    _STAGED_SHM.append(seg.name)  # left behind on purpose; next test cleans up


@needs_shm
def test_cleanup_after_allow_leaks():
    # The staged segment is in this test's baseline, so unlinking it here
    # passes the sanitizer (only *new* entries are leaks).
    while _STAGED_SHM:
        seg = shared_memory.SharedMemory(name=_STAGED_SHM.pop())
        seg.unlink()
        seg.close()


def test_clean_test_passes_sanitizer():
    # A well-behaved mp user: everything joined, closed, and released.
    ctx = mp.get_context("fork")
    proc = ctx.Process(target=time.sleep, args=(0.01,))
    proc.start()
    proc.join(timeout=10.0)
    assert proc.exitcode == 0
    proc.close()
