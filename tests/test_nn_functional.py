"""Unit tests for conv/pool/BN kernels — checked against scipy references
and numerical gradients."""

import numpy as np
import pytest
from scipy import signal

import repro.nn.functional as F
from repro.nn import Tensor

from gradcheck import check_grad

RNG = np.random.default_rng(7)


def reference_conv2d(x, w, stride=1, padding=0):
    """Direct scipy cross-correlation reference (N, C, H, W)."""
    n, c, h, wd = x.shape
    o = w.shape[0]
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    kh, kw = w.shape[2:]
    ho = (x.shape[2] - kh) // stride + 1
    wo = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, o, ho, wo))
    for i in range(n):
        for j in range(o):
            acc = np.zeros((x.shape[2] - kh + 1, x.shape[3] - kw + 1))
            for ch in range(c):
                acc += signal.correlate2d(x[i, ch], w[j, ch], mode="valid")
            out[i, j] = acc[::stride, ::stride]
    return out


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)])
    def test_matches_scipy(self, stride, padding):
        x = RNG.normal(size=(2, 3, 9, 9))
        w = RNG.normal(size=(4, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        ref = reference_conv2d(x, w, stride, padding)
        np.testing.assert_allclose(out.data, ref, atol=1e-4)

    def test_bias(self):
        x = RNG.normal(size=(1, 2, 5, 5))
        w = RNG.normal(size=(3, 2, 3, 3))
        b = RNG.normal(size=(3,))
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), padding=1)
        ref = reference_conv2d(x, w, 1, 1) + b.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(out.data, ref, atol=1e-4)

    def test_1x1_kernel(self):
        x = RNG.normal(size=(1, 4, 6, 6))
        w = RNG.normal(size=(2, 4, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w))
        ref = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out.data, ref, atol=1e-4)

    def test_output_shape_stride2(self):
        x = Tensor(np.zeros((1, 1, 8, 8)))
        w = Tensor(np.zeros((1, 1, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 1, 4, 4)


class TestConv2dBackward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_input_grad(self, stride, padding):
        w = Tensor(RNG.normal(size=(2, 2, 3, 3)))
        check_grad(
            lambda t: F.conv2d(t, w, stride=stride, padding=padding).sum(),
            RNG.normal(size=(1, 2, 6, 6)),
        )

    def test_input_grad_non_divisible(self):
        # (H + 2p - k) % stride != 0 exercises the truncation-padding path.
        w = Tensor(RNG.normal(size=(1, 1, 3, 3)))
        check_grad(lambda t: F.conv2d(t, w, stride=2, padding=0).sum(), RNG.normal(size=(1, 1, 8, 8)))

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1)])
    def test_weight_grad(self, stride, padding):
        x = Tensor(RNG.normal(size=(2, 2, 6, 6)))

        def build(t):
            return F.conv2d(x, t, stride=stride, padding=padding).sum()

        check_grad(build, RNG.normal(size=(3, 2, 3, 3)))

    def test_bias_grad(self):
        x = Tensor(RNG.normal(size=(2, 1, 4, 4)))
        w = Tensor(RNG.normal(size=(2, 1, 3, 3)))

        def build(t):
            return F.conv2d(x, w, t, padding=1).sum()

        check_grad(build, RNG.normal(size=(2,)))

    def test_weighted_output_grad(self):
        # Non-uniform output gradient catches orientation bugs (flip errors).
        w = Tensor(RNG.normal(size=(2, 1, 3, 3)))
        coeff = Tensor(RNG.normal(size=(1, 2, 4, 4)))
        check_grad(lambda t: (F.conv2d(t, w) * coeff).sum(), RNG.normal(size=(1, 1, 6, 6)))


class TestConv1d:
    def test_forward_matches_manual(self):
        x = RNG.normal(size=(2, 3, 10))
        w = RNG.normal(size=(4, 3, 3))
        out = F.conv1d(Tensor(x), Tensor(w), padding=1)
        assert out.shape == (2, 4, 10)
        # Reference via correlate.
        ref = np.zeros((2, 4, 10))
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1)))
        for i in range(2):
            for j in range(4):
                for c in range(3):
                    ref[i, j] += np.correlate(xp[i, c], w[j, c], mode="valid")
        np.testing.assert_allclose(out.data, ref, atol=1e-4)

    def test_grad(self):
        w = Tensor(RNG.normal(size=(2, 2, 3)))
        check_grad(lambda t: F.conv1d(t, w, padding=1).sum(), RNG.normal(size=(1, 2, 8)))


class TestPooling:
    def test_max_pool2d_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[5.0, 7.0], [13.0, 15.0]]]])

    def test_max_pool2d_grad_routes_to_argmax(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
        np.testing.assert_allclose(t.grad, expected)

    def test_max_pool2d_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(np.zeros((1, 1, 5, 4))), 2)

    def test_avg_pool2d(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_avg_pool2d_grad(self):
        check_grad(lambda t: (F.avg_pool2d(t, 2) ** 2).sum(), RNG.normal(size=(1, 2, 4, 4)))

    def test_global_avg_pool(self):
        x = RNG.normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), atol=1e-6)

    def test_max_pool1d(self):
        x = np.array([[[1.0, 3.0, 2.0, 0.0, 5.0, 4.0]]])
        out = F.max_pool1d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[3.0, 2.0, 5.0]]])

    def test_max_pool1d_grad(self):
        x = RNG.normal(size=(1, 2, 8))
        t = Tensor(x, requires_grad=True)
        F.max_pool1d(t, 2).sum().backward()
        assert t.grad.sum() == pytest.approx(8.0)  # one unit per window


class TestBatchNorm:
    def test_training_normalizes(self):
        x = RNG.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        rm, rv = np.zeros(4), np.ones(4)
        out = F.batch_norm(Tensor(x), gamma, beta, rm, rv, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated(self):
        x = RNG.normal(loc=5.0, size=(16, 2, 4, 4))
        rm, rv = np.zeros(2), np.ones(2)
        F.batch_norm(Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv, training=True, momentum=1.0)
        np.testing.assert_allclose(rm, x.mean(axis=(0, 2, 3)), atol=1e-4)

    def test_inference_affine_matches_stats(self):
        """Eval-mode BN must equal the fused a*x+b form from §2.1."""
        x = RNG.normal(size=(4, 3, 5, 5))
        gamma = np.array([1.5, 0.5, 2.0])
        beta = np.array([0.1, -0.2, 0.0])
        rm = np.array([0.3, -0.1, 0.5])
        rv = np.array([1.2, 0.8, 2.0])
        out = F.batch_norm(Tensor(x), Tensor(gamma), Tensor(beta), rm, rv, training=False)
        a = gamma / np.sqrt(rv + 1e-5)
        b = beta - rm * a
        ref = a.reshape(1, 3, 1, 1) * x + b.reshape(1, 3, 1, 1)
        np.testing.assert_allclose(out.data, ref, atol=1e-5)

    def test_training_grad(self):
        gamma = Tensor(RNG.uniform(0.5, 1.5, size=3))
        beta = Tensor(RNG.normal(size=3))

        def build(t):
            rm, rv = np.zeros(3), np.ones(3)
            return (F.batch_norm(t, gamma, beta, rm, rv, training=True) ** 2).sum()

        check_grad(build, RNG.normal(size=(4, 3, 3, 3)), atol=3e-2, rtol=3e-2)

    def test_3d_input(self):
        x = RNG.normal(size=(4, 3, 10))  # CharCNN shape
        rm, rv = np.zeros(3), np.ones(3)
        out = F.batch_norm(Tensor(x), Tensor(np.ones(3)), Tensor(np.zeros(3)), rm, rv, training=True)
        assert out.shape == (4, 3, 10)


class TestMisc:
    def test_linear(self):
        x = RNG.normal(size=(5, 3))
        w = RNG.normal(size=(4, 3))
        b = RNG.normal(size=(4,))
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, atol=1e-5)

    def test_pad2d(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = F.pad2d(x, (1, 2, 3, 4))
        assert out.shape == (1, 1, 5, 9)
        assert out.data.sum() == 4.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))

    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.normal(size=(10,)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((100_000,)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)
