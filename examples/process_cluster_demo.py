"""Run ADCNN for real: Conv nodes as OS processes doing actual inference.

    python examples/process_cluster_demo.py

Workers hold the separable-block weights, receive real image tiles over IPC
queues, run the NumPy forward pass, compress the result with the §4
pipeline, and stream it back.  One worker is artificially slowed, so you
can watch Algorithm 2's statistics shift the allocation away from it and
the T_L deadline zero-fill its stragglers.
"""

import numpy as np

import repro.nn as nn
from repro.compression import CompressionPipeline
from repro.models import vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid
from repro.runtime import ProcessCluster, ProcessClusterConfig


def main() -> None:
    rng = np.random.default_rng(0)
    model = vgg_mini(num_classes=4, input_size=48, base_width=8).eval()
    grid = TileGrid(4, 4)
    pipeline = CompressionPipeline(lower=0.0, upper=4.0, bits=4)

    # Local reference: the same split model computed in-process.
    local = FDSPModel(model, grid, clipped_relu=nn.ClippedReLU(0.0, 4.0),
                      quantizer=nn.QuantizeSTE(bits=4, max_value=4.0))
    local.eval()

    config = ProcessClusterConfig(
        num_workers=3,
        t_limit=0.8,                       # T_L: stragglers get zero-filled
        delay_per_tile=(0.0, 0.0, 0.35),   # worker 2 emulates a slow device
    )
    print(f"Starting {config.num_workers} Conv-node processes (worker 2 throttled)...")
    with ProcessCluster(model, grid, pipeline=pipeline, config=config) as cluster:
        for i in range(4):
            image = rng.normal(size=(1, 3, 48, 48)).astype(np.float32)
            outcome = cluster.infer(image)
            expected = local(Tensor(image)).data
            match = np.allclose(outcome.output, expected, atol=1e-4)
            print(f"image {i}: alloc={[int(v) for v in outcome.allocation]} "
                  f"received={[int(v) for v in outcome.received_per_worker]} "
                  f"zero_filled={len(outcome.zero_filled_tiles)} "
                  f"matches_local={match} ({outcome.wall_seconds * 1000:.0f} ms)")
        print(f"final worker rate estimates s_k: {np.round(cluster.worker_rates, 2)}")
        print("(the slow worker misses T_L, its s_k falls, and Algorithm 3 hands it fewer tiles;"
              " matches_local is True exactly when no tile was zero-filled)")


if __name__ == "__main__":
    main()
