"""Compare ADCNN against every §7 baseline on the paper's three models.

    python examples/baseline_comparison.py

Regenerates the Figure 14 comparison (ADCNN vs Neurosurgeon vs AOFL) plus
the Figure 11 anchors (single device, remote cloud), printing one table per
model with the latency breakdown each scheme pays.
"""

from repro.baselines import (
    aofl_latency,
    naive_spatial_latency,
    neurosurgeon_latency,
    remote_cloud_latency,
    single_device_latency,
)
from repro.experiments import build_adcnn_system
from repro.models import get_spec
from repro.partition import TileGrid
from repro.profiling import CLOUD_V100, RASPBERRY_PI_3B, profile_for_model


def main() -> None:
    for name in ("yolo", "vgg16", "resnet34"):
        spec = get_spec(name)
        device = profile_for_model(RASPBERRY_PI_3B, name)
        cloud = profile_for_model(CLOUD_V100, name)

        system = build_adcnn_system(name, num_nodes=8)
        system.run(30)
        adcnn = system.mean_latency(skip=2)

        sd = single_device_latency(spec, device=device)
        rc = remote_cloud_latency(spec, cloud=cloud)
        ns = neurosurgeon_latency(spec, edge=device, cloud=cloud)
        ao = aofl_latency(spec, TileGrid(2, 4), device=device)

        print(f"\n=== {name} ===")
        print(f"  {'scheme':<14} {'latency':>10}  detail")
        print(f"  {'ADCNN':<14} {adcnn * 1000:8.1f}ms  8 Conv nodes, all conv blocks distributed")
        print(f"  {'Neurosurgeon':<14} {ns.total_s * 1000:8.1f}ms  split@{ns.best.split.index}, "
              f"{100 * ns.transmission_fraction:.0f}% of time in transmission")
        groups = ",".join(f"[{g.start}:{g.end})" for g in ao.groups) or "centralized"
        print(f"  {'AOFL':<14} {ao.total_s * 1000:8.1f}ms  fused groups {groups}")
        naive = naive_spatial_latency(spec, TileGrid(2, 4), device=device)
        print(f"  {'naive spatial':<14} {naive.total_s * 1000:8.1f}ms  "
              f"{naive.num_exchanges} halo-exchange barriers ({naive.exchange_s * 1000:.0f}ms)")
        print(f"  {'remote cloud':<14} {rc.total_s * 1000:8.1f}ms  "
              f"{rc.transmission_s * 1000:.0f}ms transmission + {rc.compute_s * 1000:.0f}ms V100")
        print(f"  {'single device':<14} {sd.total_s * 1000:8.1f}ms  whole CNN on one RPi")
        print(f"  ADCNN advantage: {ns.total_s / adcnn:.1f}x vs Neurosurgeon (paper 2.8x), "
              f"{ao.total_s / adcnn:.1f}x vs AOFL (paper 1.6x)")


if __name__ == "__main__":
    main()
