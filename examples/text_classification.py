"""Distributed character-level text classification (paper task family 4).

    python examples/text_classification.py

CharCNN is the paper's 1-D case: a partition grid "r x c" maps to r*c
sequence segments.  This example trains `charcnn_mini` on the motif
dataset, retrains it progressively for an 8-segment FDSP partition, and
serves it from worker processes.
"""

import numpy as np

from repro.data import make_text_classification
from repro.models import charcnn_mini
from repro.nn.losses import cross_entropy
from repro.partition import SegmentGrid
from repro.runtime import ProcessCluster, ProcessClusterConfig
from repro.training import TrainConfig, evaluate_classification, progressive_retrain, train_epochs


def main() -> None:
    data = make_text_classification(
        num_samples=160, num_classes=3, vocab=12, length=512,
        motif_length=8, motifs_per_sample=8, seed=2,
    )
    train, test = data.split()
    model = charcnn_mini(num_classes=3, vocab=12, length=512, base_width=12, separable_prefix=2, seed=2)
    cfg = TrainConfig(lr=0.02, batch_size=16)

    print("Training CharCNN on synthetic motif text...")
    train_epochs(model, train.encoded, train.labels, cross_entropy, epochs=6, config=cfg)
    metric = lambda m: evaluate_classification(m, test.encoded, test.labels)
    print(f"original accuracy: {metric(model):.3f}")

    print("\nProgressive retraining for 8 sequence segments:")
    result = progressive_retrain(
        model, SegmentGrid(8), train.encoded, train.labels, cross_entropy, metric,
        max_epochs_per_stage=3, config=cfg,
    )
    for stage in result.stages:
        print(f"  {stage.name:<13} {stage.epochs} epoch(s) -> accuracy {stage.metric:.3f}")

    print("\nServing from 2 Conv-node processes (with the §4 wire pipeline):")
    from repro.compression import CompressionPipeline

    pipeline = CompressionPipeline(result.bounds.lower, result.bounds.upper, bits=4)
    with ProcessCluster(
        model, SegmentGrid(8), pipeline=pipeline, config=ProcessClusterConfig(num_workers=2)
    ) as cluster:
        correct = 0
        n = 10
        for i in range(n):
            out = cluster.infer(test.encoded[i : i + 1])
            correct += int(out.output.argmax() == test.labels[i])
        print(f"distributed accuracy on {n} held-out samples: {correct / n:.2f}")


if __name__ == "__main__":
    main()
