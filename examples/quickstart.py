"""Quickstart: FDSP-partition a CNN and compress its Conv-node outputs.

Runs in seconds on a laptop:

    python examples/quickstart.py

Shows the three core pieces of ADCNN on a small VGG-style model:
1. FDSP (§3.2) — per-tile execution equals whole-image execution except in
   a thin tile-border band;
2. the §4 compression pipeline — clipped ReLU + 4-bit quantization + RLE
   shrinks the Conv-node output by an order of magnitude;
3. the split model — separable blocks (Conv nodes) + rest layers (Central).
"""

import numpy as np

import repro.nn as nn
from repro.compression import CompressionPipeline
from repro.models import vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid, fdsp_forward, interior_mask, receptive_border


def main() -> None:
    rng = np.random.default_rng(0)
    model = vgg_mini(num_classes=4, input_size=48, base_width=8).eval()
    grid = TileGrid(2, 2)  # coarse enough that tiles keep an exact interior
    image = rng.normal(size=(1, 3, 48, 48)).astype(np.float32)

    # --- 1. FDSP vs whole-image execution -----------------------------------
    separable = model.separable_part()
    whole = separable(Tensor(image)).data
    tiled = fdsp_forward(separable, image, grid).data
    border = receptive_border(separable)
    mask = interior_mask(grid, whole.shape[2:], border)
    interior_err = np.abs(tiled[:, :, mask] - whole[:, :, mask]).max()
    border_err = np.abs(tiled[:, :, ~mask] - whole[:, :, ~mask]).max()
    print(f"FDSP on a {grid} grid (receptive border = {border} px):")
    print(f"  max |difference| on interior pixels: {interior_err:.2e}  (exact)")
    print(f"  max |difference| on border pixels:   {border_err:.3f}  (what retraining absorbs)")

    # --- 2. Compression pipeline --------------------------------------------
    pipe = CompressionPipeline(lower=0.2, upper=2.0, bits=4)
    compressed = pipe.compress(np.maximum(whole, 0))
    print(f"\nConv-node output compression (clip + 4-bit quant + RLE):")
    print(f"  raw: {compressed.raw_bits / 8000:.1f} kB -> wire: {compressed.compressed_bits / 8000:.1f} kB "
          f"({compressed.ratio:.3f}x; paper Table 2: 0.011-0.056x)")

    # --- 3. The split model --------------------------------------------------
    fdsp = FDSPModel(
        model, grid,
        clipped_relu=nn.ClippedReLU(0.2, 2.0),
        quantizer=nn.QuantizeSTE(bits=4, max_value=1.8),
    )
    fdsp.eval()
    logits = fdsp(Tensor(image)).data
    print(f"\nEnd-to-end split inference (tiles -> compress -> rest layers):")
    print(f"  logits: {np.round(logits, 3)}")
    print(f"  separable blocks on Conv nodes: {model.separable_prefix} of {model.num_blocks()}")


if __name__ == "__main__":
    main()
