"""Progressive retraining (Algorithm 1) on a synthetic task, end to end.

    python examples/progressive_retraining.py

Trains a small VGG-style classifier on the oriented-texture dataset, then
applies the three ADCNN modifications one at a time — FDSP partitioning,
clipped ReLU, 4-bit quantization — retraining after each until accuracy
recovers.  Finishes by measuring the wire-size reduction the learned
bounds buy (Table 2's quantity).

Takes a couple of minutes on one CPU core.
"""

import numpy as np

import repro.nn as nn
from repro.compression import CompressionPipeline
from repro.data import make_classification
from repro.models import vgg_mini
from repro.nn.losses import cross_entropy
from repro.partition.fdsp import fdsp_forward
from repro.training import TrainConfig, evaluate_classification, progressive_retrain, train_epochs


def main() -> None:
    data = make_classification(num_samples=160, num_classes=3, image_size=48, seed=0)
    train, test = data.split()
    cfg = TrainConfig(lr=0.05, batch_size=16)

    model = vgg_mini(num_classes=3, input_size=48, base_width=8)
    print("Training the original model...")
    train_epochs(model, train.images, train.labels, cross_entropy, epochs=5, config=cfg)
    metric = lambda m: evaluate_classification(m, test.images, test.labels)
    print(f"original accuracy: {metric(model):.3f}")

    print("\nProgressive retraining (Algorithm 1) for an 8x8 partition:")
    result = progressive_retrain(
        model, "8x8", train.images, train.labels, cross_entropy, metric,
        max_epochs_per_stage=4, config=cfg,
    )
    for stage in result.stages:
        print(f"  {stage.name:<13} {stage.epochs} epoch(s) -> accuracy {stage.metric:.3f}")
    print(f"  total extra epochs: {result.total_epochs} (paper Table 1: 5-13)")
    print(f"  clipped-ReLU bounds: [{result.bounds.lower:.3f}, {result.bounds.upper:.3f}] "
          f"(sparsity {result.bounds.achieved_sparsity:.2f})")

    # Table 2: wire size of what Conv nodes would transmit.
    fdsp = result.model
    fdsp.eval()
    with nn.no_grad():
        sep_out = fdsp_forward(fdsp.model.separable_part(), test.images[:16], fdsp.grid).data
    pipe = CompressionPipeline(result.bounds.lower, result.bounds.upper, bits=4)
    ct = pipe.compress(sep_out)
    print(f"\nConv-node output: {ct.raw_bits / 8000:.0f} kB -> {ct.compressed_bits / 8000:.1f} kB "
          f"({ct.ratio:.3f}x; paper Table 2: 0.011-0.056x)")


if __name__ == "__main__":
    main()
