"""Distributed object detection with a tiny YOLO (paper task family 2).

    python examples/object_detection.py

Trains `yolo_mini` on the synthetic detection dataset (textured squares +
YOLO-grid targets), FDSP-partitions it, and runs distributed inference over
the process cluster — decoding the same boxes the local model finds.
Takes a few minutes on one core.
"""

import numpy as np

from repro.data import make_detection
from repro.models import decode_yolo, yolo_mini
from repro.nn import Tensor
from repro.nn.losses import yolo_loss
from repro.partition import FDSPModel, TileGrid
from repro.runtime import ProcessCluster, ProcessClusterConfig
from repro.training import TrainConfig, evaluate_detection_cells, train_epochs


def main() -> None:
    data = make_detection(num_samples=96, num_classes=3, image_size=48, grid_stride=8, seed=1)
    train, test = data.split()
    model = yolo_mini(num_classes=3, input_size=48, base_width=8, separable_prefix=3, seed=1)

    print("Training tiny YOLO on synthetic detection data...")
    loss_fn = lambda pred, target: yolo_loss(pred, target, num_classes=3)
    train_epochs(model, train.images, train.targets, loss_fn, epochs=6,
                 config=TrainConfig(lr=0.02, batch_size=8))
    f1 = evaluate_detection_cells(model, test.images, test.targets)
    print(f"cell-level detection F1: {f1:.3f}")

    print("\nDistributed inference over 2 Conv-node processes (4x4 FDSP):")
    fdsp_reference = FDSPModel(model, TileGrid(4, 4))
    fdsp_reference.eval()
    with ProcessCluster(model, "4x4", config=ProcessClusterConfig(num_workers=2)) as cluster:
        for i in range(2):
            image = test.images[i : i + 1]
            outcome = cluster.infer(image)
            boxes = decode_yolo(outcome.output, conf_threshold=0.5)[0]
            truth = test.boxes[i]
            print(f"image {i}: {len(boxes)} detections (ground truth {len(truth)} objects)")
            for b in boxes[:4]:
                print(f"    class {b['cls']} at cell ({b['cx']:.1f}, {b['cy']:.1f}) conf {b['conf']:.2f}")
            local = fdsp_reference(Tensor(image)).data
            print(f"    distributed == local FDSP forward: "
                  f"{np.allclose(outcome.output, local, atol=1e-4)}")


if __name__ == "__main__":
    main()
