"""Simulate an ADCNN edge cluster on the paper's testbed parameters.

    python examples/edge_cluster_simulation.py

Deploys full-scale VGG16 (cost model) on 8 simulated Raspberry Pis behind
87.72 Mbps WiFi (§7.2), compares against the single-device and remote-cloud
baselines (Figure 11 / Table 3), then throttles half the cluster mid-run
and watches Algorithms 2+3 rebalance the tiles (Figure 15).
"""

from repro.baselines import remote_cloud_latency, single_device_latency
from repro.experiments import build_adcnn_system
from repro.models import get_spec
from repro.runtime import ADCNNConfig
from repro.simulator import CpuSchedule


def main() -> None:
    spec = get_spec("vgg16")

    # --- stable cluster (Figure 11 / Table 3) --------------------------------
    system = build_adcnn_system("vgg16", num_nodes=8)
    system.run(30)
    adcnn_ms = system.mean_latency(skip=2) * 1000
    single_ms = single_device_latency(spec).total_s * 1000
    cloud_ms = remote_cloud_latency(spec).total_s * 1000
    print("VGG16 on 8 RPi Conv nodes + 1 RPi Central node, 87.72 Mbps WiFi:")
    print(f"  ADCNN         {adcnn_ms:8.1f} ms   (paper ~241 ms)")
    print(f"  single device {single_ms:8.1f} ms   (paper 1586.53 ms)")
    print(f"  remote cloud  {cloud_ms:8.1f} ms   (paper ~601 ms)")
    print(f"  speedups: {single_ms / adcnn_ms:.1f}x vs single, {cloud_ms / adcnn_ms:.1f}x vs cloud")

    # --- dynamic degradation (Figure 15) -------------------------------------
    throttle_at = 8.0  # seconds into the run
    schedules = (
        [CpuSchedule()] * 4
        + [CpuSchedule(((throttle_at, 0.45),))] * 2
        + [CpuSchedule(((throttle_at, 0.24),))] * 2
    )
    system = build_adcnn_system(
        "vgg16", num_nodes=8, schedules=schedules, config=ADCNNConfig(pipeline_depth=1)
    )
    records = system.run(50)
    print("\nThrottling nodes 5-6 to 45% and 7-8 to 24% CPU mid-run:")
    print(f"  {'img':>4} {'latency':>9}  allocation")
    for r in records[::7] + [records[-1]]:
        alloc = " ".join(f"{int(a):2d}" for a in r.allocation)
        print(f"  {r.image_id:>4} {r.latency * 1000:7.1f}ms  [{alloc}]")
    print("  (paper: 8x8 tiles -> 12,12,12,12,5,5,3,3; latency 241 -> 392 -> 351 ms)")


if __name__ == "__main__":
    main()
