"""Root pytest configuration.

Activates the resource-sanitizer plugin (``tests/plugins/sanitizer.py``)
for every run — the main suite, benchmarks, and example smoke tests alike —
and makes ``repro`` importable without an explicit ``PYTHONPATH=src``.

``pytest_plugins`` is only honored in the rootdir conftest, and the test
tree deliberately has no ``__init__.py`` files (test modules import shared
helpers like ``allocation_oracle`` top-level), so the plugin directory is
put on ``sys.path`` rather than imported as a package.
"""

import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent
for _extra in (_REPO / "src", _REPO / "tests" / "plugins"):
    _p = str(_extra)
    if _p not in sys.path:
        sys.path.insert(0, _p)

pytest_plugins = ("sanitizer",)
