"""Benchmarks for the extension experiments (beyond the paper's figures)."""

from repro.experiments import ext_failure, ext_grid_sweep, ext_robustness, ext_tradeoff, sec23_feature_locality


def test_ext_grid_sweep(run_experiment):
    report = run_experiment(ext_grid_sweep.run, num_images=12)
    lat = report.column("latency_ms")
    # The sweet spot is strictly inside the sweep (load quantization on the
    # coarse end, per-message overhead on the fine end).
    best = lat.index(min(lat))
    assert 0 < best < len(lat) - 1


def test_ext_failure(run_experiment):
    report = run_experiment(ext_failure.run, num_images=35, fail_after_images=12)
    # The dead node ends with zero tiles and some tiles were zero-filled
    # during the adaptation window.
    assert report.rows[-1]["dead_node_tiles"] == 0
    assert any(r["zero_filled"] > 0 for r in report.rows)


def test_ext_robustness(run_experiment):
    report = run_experiment(
        ext_robustness.run, loss_fractions=(0.0, 0.125, 0.5), base_epochs=4
    )
    acc = report.column("accuracy")
    # Accuracy is monotone non-increasing in tile loss (weak form).
    assert acc[0] >= acc[-1]


def test_ext_tradeoff(run_experiment):
    report = run_experiment(ext_tradeoff.run, base_epochs=4, num_images=12)
    lat = report.column("latency_ms")
    # Finer grids reduce latency (§7.2.2's trade-off, latency axis).
    assert lat[-1] < lat[0]


def test_sec23_feature_locality(run_experiment):
    report = run_experiment(sec23_feature_locality.run, base_epochs=3)
    scores = report.column("locality")
    assert scores[0] > 0.99 and scores[-1] <= scores[0]
