"""Benchmark regenerating Figure 13 (scalability, energy, memory)."""

from repro.experiments import fig13_scalability


def test_fig13_scalability(run_experiment):
    report = run_experiment(fig13_scalability.run, num_images=20)
    rows = {r["nodes"]: r for r in report.rows if r["nodes"] != "S"}
    # Paper anchors: ~1.8x at 2 nodes, ~6.2x at 8 nodes.
    assert 1.2 < rows[2]["speedup"] < 2.4
    assert 4.0 < rows[8]["speedup"] < 8.0
    assert rows[8]["energy_j_per_inference"] < rows[2]["energy_j_per_inference"]
