"""Benchmark regenerating Figure 3 (per-layer-block time and ifmap size)."""

from repro.experiments import fig03_layer_profile


def test_fig03_layer_profile(run_experiment):
    report = run_experiment(fig03_layer_profile.run)
    assert len(report.rows) > 20  # four models' worth of blocks
