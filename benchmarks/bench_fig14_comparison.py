"""Benchmark regenerating Figure 14 (ADCNN vs Neurosurgeon vs AOFL)."""

from repro.experiments import fig14_comparison


def test_fig14_comparison(run_experiment):
    report = run_experiment(fig14_comparison.run, num_images=30)
    for row in report.rows:
        # ADCNN wins on every model (paper: 2.8x / 1.6x on average).
        assert row["adcnn_ms"] < row["neurosurgeon_ms"]
        assert row["adcnn_ms"] < row["aofl_ms"]
