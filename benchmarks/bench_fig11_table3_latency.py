"""Benchmark regenerating Figure 11 and Table 3 (latency comparison)."""

from repro.experiments import fig11_table3_latency


def test_fig11_latency(run_experiment):
    report = run_experiment(fig11_table3_latency.run, num_images=30)
    by_model = {r["model"]: r for r in report.rows}
    # Compute-heavy models see large speedups over a single device.
    assert by_model["vgg16"]["speedup_vs_single"] > 4.0
    assert by_model["resnet34"]["speedup_vs_single"] > 3.0


def test_table3_breakdown(run_experiment):
    report = run_experiment(fig11_table3_latency.run_breakdown, num_images=30)
    rows = {r["scheme"]: r for r in report.rows}
    assert rows["Remote cloud"]["transmission_ms"] > 400  # paper: 502.21
    assert rows["Single-device"]["compute_ms"] > 1400     # paper: 1586.53
