"""Benchmark regenerating Figure 12 (pruning effect vs transmission rate)."""

import numpy as np

from repro.experiments import fig12_pruning


def test_fig12_pruning(run_experiment):
    report = run_experiment(fig12_pruning.run, num_images=16)
    by_link: dict = {}
    for r in report.rows:
        by_link.setdefault(r["link"], []).append(r["reduction_pct"])
    fast = float(np.mean(by_link["87.72Mbps"]))
    slow = float(np.mean(by_link["12.66Mbps"]))
    # Paper: 10.73% and 31.2% — the ordering and the slow-link magnitude
    # are the claims under test.
    assert slow > fast
    assert slow > 15.0
