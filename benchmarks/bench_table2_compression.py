"""Benchmark regenerating Table 2 (Conv-node output size after pruning)."""

from repro.experiments import table2_compression


def test_table2_compression(run_experiment):
    report = run_experiment(table2_compression.run, models=("vgg_mini", "charcnn_mini"), base_epochs=4)
    # Paper range is 0.011-0.056x; mini models with searched bounds land
    # within the same order of magnitude.
    for row in report.rows:
        assert row["ratio"] < 0.25, row
        assert row["sparsity"] > 0.5, row
