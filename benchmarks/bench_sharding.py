"""Multi-cluster sharding benchmarks (ISSUE 10).

Two measurements, both asserted so CI's perf-smoke job fails on regression,
both exporting raw numbers through pytest-benchmark's ``extra_info``:

- **DES scaling curve**: the same saturating Poisson stream over 1, 2 and
  4 :class:`~repro.sharding.ShardedSystem` islands.  Islands share nothing,
  so completed-per-sim-second must scale near-linearly — the 4-cluster
  sweep is gated at >= 3x the single-cluster saturation throughput.
- **Failover drain (process backend)**: a 2-shard
  :class:`~repro.sharding.ClusterRouter` behind the serving front-end with
  one whole shard killed mid-stream — every admitted image must resolve
  (re-routed result or typed failure, never a hang) and every completed
  image must leave exactly one complete trace tree.
"""

import time

import numpy as np

from repro.models import get_spec, vgg_mini
from repro.nn import Tensor
from repro.partition import FDSPModel, TileGrid
from repro.profiling import RASPBERRY_PI_3B
from repro.runtime import (
    ADCNNSystem,
    ADCNNWorkload,
    poisson_arrival_times,
)
from repro.serving import ClusterFailed, ServingConfig, ServingFrontEnd
from repro.sharding import STATE_DOWN, STATE_UP, ShardedDeploymentSpec, ShardedSystem, build_router
from repro.simulator import SimNode
from repro.telemetry import TelemetryRecorder
from repro.telemetry.trace import assemble_traces

RNG_SEED = 7
# Well past a single island's saturation knee (bench_serving places it
# below 16 Hz), and still past the knee when quartered across 4 islands.
SATURATING_RATE_HZ = 48.0
IMAGES = 240


# --------------------------------------------------------- DES scaling
def _island(_i: int) -> ADCNNSystem:
    wl = ADCNNWorkload.from_spec(
        get_spec("vgg16"), num_tiles=64, separable_prefix=13, compression_ratio=0.032
    )
    nodes = [SimNode(f"n{k}", RASPBERRY_PI_3B) for k in range(8)]
    return ADCNNSystem(wl, nodes, SimNode("central", RASPBERRY_PI_3B))


def des_scaling_curve(cluster_counts=(1, 2, 4)):
    """Run the identical offered stream against 1, 2 and 4 islands."""
    points = []
    for n in cluster_counts:
        rng = np.random.default_rng(RNG_SEED)  # same stream for every n
        times = poisson_arrival_times(SATURATING_RATE_HZ, IMAGES, rng)
        result = ShardedSystem(_island, n).run_open_loop(times, queue_capacity=8)
        points.append((n, result))
    return points


def test_des_sharded_throughput_scales_near_linearly(benchmark):
    """CI gate: 4 shared-nothing islands deliver >= 3x one island's
    saturation throughput on the same offered stream."""
    points = benchmark.pedantic(des_scaling_curve, rounds=1, iterations=1)
    by_n = {n: r for n, r in points}
    benchmark.extra_info["curve"] = [
        {
            "clusters": n,
            "offered": r.offered,
            "completed": r.completed,
            "shed_fraction": r.shed_fraction,
            "throughput_hz": r.throughput,
            "p99_sojourn_s": r.sojourn_quantile(0.99),
        }
        for n, r in points
    ]
    print("\nclusters  throughput_hz  shed   p99_s")
    for n, r in points:
        print(
            f"{n:8d}  {r.throughput:13.2f}  {r.shed_fraction:4.2f}"
            f"  {r.sojourn_quantile(0.99):6.3f}"
        )
    for _, r in points:
        # Admission bookkeeping survives aggregation at every width.
        assert r.offered == r.completed + r.failed + r.shed == IMAGES
    single, double, quad = by_n[1], by_n[2], by_n[4]
    # The single cluster must actually be saturated, otherwise the ratio
    # below measures slack instead of capacity.
    assert single.shed_fraction > 0.25, f"offered rate below the knee: {single.shed_fraction}"
    # Near-linear scaling: islands share nothing, so capacity adds.
    assert double.throughput > 1.5 * single.throughput
    assert quad.throughput >= 3.0 * single.throughput, (
        f"4-cluster throughput {quad.throughput:.2f} < 3x single "
        f"{single.throughput:.2f}"
    )
    # More capacity at the same offered load sheds less.
    assert quad.shed_fraction < single.shed_fraction


# ------------------------------------------------ failover drain (real)
def failover_drain(num_images=10, kill_after=3):
    """Kill one of two shards mid-stream; account for every image."""
    model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()
    grid = TileGrid(2, 2)
    reference = FDSPModel(model, grid)
    reference.eval()
    rng = np.random.default_rng(RNG_SEED)
    telemetry = TelemetryRecorder()
    spec = ShardedDeploymentSpec.homogeneous(
        2, num_workers=1, policy="round_robin", mark_down_after=1, max_restarts=0
    )
    router = build_router(model, grid, spec, telemetry=telemetry)
    batch = [rng.normal(size=(1, 3, 24, 24)).astype(np.float32) for _ in range(num_images)]
    outcomes = []
    start = time.monotonic()
    with ServingFrontEnd(router, ServingConfig(window=4, queue_capacity=2 * num_images)) as fe:
        for img in batch[:kill_after]:  # warm: fan-out works pre-fault
            result = fe.submit(img).result(timeout=120)
            np.testing.assert_allclose(
                result.outcome.output, reference(Tensor(img)).data, atol=1e-5
            )
            outcomes.append("ok")
        futures = [fe.submit(img) for img in batch[kill_after:]]
        router._handles[0].kill()
        for img, future in zip(batch[kill_after:], futures):
            try:
                result = future.result(timeout=120)
            except ClusterFailed:
                outcomes.append("failed")
                continue
            np.testing.assert_allclose(
                result.outcome.output, reference(Tensor(img)).data, atol=1e-5
            )
            outcomes.append("ok")
        health = fe.health()
        status = fe.status()
    trees = assemble_traces(telemetry.events)
    return {
        "admitted": len(batch),
        "completed": sum(1 for o in outcomes if o == "ok"),
        "failed": sum(1 for o in outcomes if o == "failed"),
        "rerouted": health.rerouted,
        "complete_trace_trees": sum(1 for t in trees.values() if t.complete),
        "shard_states": {s.name: s.state for s in health.shards},
        "status_completed": status.completed,
        "drain_s": time.monotonic() - start,
    }


def test_process_backend_failover_drains_complete(benchmark):
    """CI gate: a shard death never leaks an image or a trace span."""
    stats = benchmark.pedantic(failover_drain, rounds=1, iterations=1)
    benchmark.extra_info["failover"] = stats
    print(f"\n{stats}")
    # Every admitted image resolved — re-routed result or typed failure.
    assert stats["completed"] + stats["failed"] == stats["admitted"]
    # A surviving sibling means the kill is absorbed, not surfaced.
    assert stats["failed"] == 0, f"re-route failed: {stats}"
    assert stats["status_completed"] == stats["admitted"]
    # Exactly one complete trace tree per completed image, even for the
    # images whose first attempt died with shard0.
    assert stats["complete_trace_trees"] == stats["completed"]
    assert stats["shard_states"]["shard0"] == STATE_DOWN
    assert stats["shard_states"]["shard1"] == STATE_UP
