"""Self-benchmark for the incremental lint cache (DESIGN.md §5j).

Runs the full two-phase analyzer over ``src/`` twice against the same
cache file and asserts the warm run (a) reuses every per-file result and
(b) is faster than the cold run.  CI's static-analysis job runs this as a
plain script (``python benchmarks/bench_lint_cache.py`` — that job has no
pytest), so the assertion logic lives in :func:`run_cold_warm` and both
entry points share it.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
if str(REPO / "src") not in sys.path:  # plain-script entry without PYTHONPATH
    sys.path.insert(0, str(REPO / "src"))

from repro.lint import analyze_paths  # noqa: E402


def run_cold_warm(cache_path: Path, target: Path | None = None) -> dict[str, float]:
    """Cold-then-warm analyzer timing over one tree; returns the numbers."""
    target = target or REPO / "src"
    t0 = time.perf_counter()
    cold = analyze_paths([str(target)], cache_path=cache_path)
    t1 = time.perf_counter()
    warm = analyze_paths([str(target)], cache_path=cache_path)
    t2 = time.perf_counter()

    assert cold.files_checked > 0
    assert cold.stats["parsed"] == cold.files_checked, "cold run must parse everything"
    assert warm.stats["reused"] == warm.files_checked, "warm run must reuse every file"
    assert warm.stats["parsed"] == 0
    assert [v.format() for v in warm.violations] == [v.format() for v in cold.violations]

    cold_s, warm_s = t1 - t0, t2 - t1
    assert warm_s < cold_s, f"warm ({warm_s:.3f}s) not faster than cold ({cold_s:.3f}s)"
    return {
        "files": float(cold.files_checked),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s else float("inf"),
    }


def test_lint_cache_warm_run_is_faster(tmp_path):
    stats = run_cold_warm(tmp_path / "lint-cache.json")
    assert stats["speedup"] > 1.0


def main() -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache",
        default=None,
        help="cache file to use (default: a fresh temp file, i.e. guaranteed cold start)",
    )
    args = parser.parse_args()
    if args.cache:
        cache_path = Path(args.cache)
    else:
        cache_path = Path(tempfile.mkdtemp(prefix="repro-lint-bench-")) / "cache.json"
    stats = run_cold_warm(cache_path)
    print(
        f"lint self-benchmark: {stats['files']:.0f} files  "
        f"cold {stats['cold_s'] * 1e3:.1f} ms  warm {stats['warm_s'] * 1e3:.1f} ms  "
        f"speedup {stats['speedup']:.1f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
