"""Benchmark regenerating Figure 15 (adaptation to node degradation)."""

from repro.experiments import fig15_adaptivity


def test_fig15_adaptivity(run_experiment):
    report = run_experiment(fig15_adaptivity.run, num_images=50, throttle_after_images=25)
    first = [int(v) for v in report.rows[0]["alloc"].split()]
    last = [int(v) for v in report.rows[-1]["alloc"].split()]
    # Paper: 8 each -> 12,12,12,12,5,5,3,3.
    assert first == [8] * 8
    assert sum(last) == 64 and min(last[:4]) >= 10 and max(last[4:]) <= 7
