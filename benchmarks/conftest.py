"""Shared benchmark helpers.

Every table/figure benchmark runs its experiment exactly once under
pytest-benchmark (``pedantic(rounds=1)``) — the experiment itself is the
timed unit — and prints the regenerated paper-style table to stdout (run
pytest with ``-s`` to see the tables).
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment module's ``run(**kwargs)`` once and print its table."""

    def _run(fn, **kwargs):
        report = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
        print()
        print(report.format_table())
        return report

    return _run
