"""Benchmark regenerating the §3.1/§4 communication-cost analyses."""

from repro.experiments import sec31_partition_costs


def test_sec31_partition_costs(run_experiment):
    report = run_experiment(sec31_partition_costs.run)
    assert report.rows[0]["mbits"] > 50  # the 51.38 Mbits channel estimate
