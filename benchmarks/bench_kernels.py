"""Microbenchmarks of the computational kernels underneath every experiment.

These use pytest-benchmark's statistical timing (multiple rounds) — the
numbers to watch when optimizing the NumPy engine.
"""

import time

import numpy as np

import repro.nn as nn
import repro.nn.functional as F
from repro.compression import (
    CompressionPipeline,
    pack_levels,
    rle_decode,
    rle_encode,
    unpack,
)
from repro.models import vgg_mini
from repro.nn import Tensor
from repro.nn.fused import fused_clip_quantize, try_compile
from repro.partition import TileGrid, fdsp_forward
from repro.partition.geometry import split_array
from repro.runtime import allocate_tiles

RNG = np.random.default_rng(0)


def _timed(fn, repeats=50):
    """Best-of-3 mean lap: robust against scheduler noise on shared CI."""
    fn()  # warm caches / BLAS threads
    laps = []
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(repeats):
            fn()
        laps.append((time.perf_counter() - t0) / repeats)
    return min(laps)


def test_conv2d_forward(benchmark):
    x = Tensor(RNG.normal(size=(4, 16, 32, 32)).astype(np.float32))
    w = Tensor(RNG.normal(size=(32, 16, 3, 3)).astype(np.float32))
    benchmark(lambda: F.conv2d(x, w, padding=1))


def test_conv2d_backward(benchmark):
    x = RNG.normal(size=(4, 16, 32, 32)).astype(np.float32)
    w = Tensor(RNG.normal(size=(32, 16, 3, 3)).astype(np.float32), requires_grad=True)

    def fwd_bwd():
        t = Tensor(x, requires_grad=True)
        F.conv2d(t, w, padding=1).sum().backward()
        w.zero_grad()

    benchmark(fwd_bwd)


def test_max_pool2d(benchmark):
    x = Tensor(RNG.normal(size=(8, 32, 32, 32)).astype(np.float32))
    benchmark(lambda: F.max_pool2d(x, 2))


def test_batch_norm_training(benchmark):
    x = Tensor(RNG.normal(size=(16, 32, 16, 16)).astype(np.float32))
    gamma, beta = Tensor(np.ones(32)), Tensor(np.zeros(32))
    rm, rv = np.zeros(32), np.ones(32)
    benchmark(lambda: F.batch_norm(x, gamma, beta, rm, rv, training=True))


def test_rle_encode_sparse(benchmark):
    levels = np.zeros(200_000, dtype=np.int64)
    levels[RNG.choice(200_000, 5000, replace=False)] = RNG.integers(1, 16, 5000)
    benchmark(lambda: rle_encode(levels))


def test_rle_roundtrip(benchmark):
    levels = np.zeros(50_000, dtype=np.int64)
    levels[RNG.choice(50_000, 2500, replace=False)] = RNG.integers(1, 16, 2500)
    benchmark(lambda: rle_decode(rle_encode(levels)))


def test_packed_encode_sparse(benchmark):
    """Levels -> one contiguous wire buffer (the shm-transport hot path)."""
    levels = np.zeros(200_000, dtype=np.int64)
    levels[RNG.choice(200_000, 5000, replace=False)] = RNG.integers(1, 16, 5000)
    benchmark(lambda: pack_levels(levels))


def test_packed_roundtrip(benchmark):
    levels = np.zeros(50_000, dtype=np.int64)
    levels[RNG.choice(50_000, 2500, replace=False)] = RNG.integers(1, 16, 2500)
    benchmark(lambda: unpack(pack_levels(levels)))


def test_compression_pipeline_packed(benchmark):
    pipe = CompressionPipeline(lower=0.2, upper=2.0, bits=4)
    x = np.maximum(RNG.normal(loc=-1.0, size=(64, 24, 24)), 0).astype(np.float32)
    benchmark(lambda: pipe.decompress(pipe.compress_packed(x)))


def test_compression_pipeline(benchmark):
    pipe = CompressionPipeline(lower=0.2, upper=2.0, bits=4)
    x = np.maximum(RNG.normal(loc=-1.0, size=(64, 24, 24)), 0).astype(np.float32)
    benchmark(lambda: pipe.apply(x))


def test_tile_allocation(benchmark):
    rates = RNG.uniform(0.5, 8.0, size=8)
    benchmark(lambda: allocate_tiles(64, rates))


def test_fdsp_tile_forward(benchmark):
    model = vgg_mini(input_size=48, base_width=8).eval()
    stack = model.separable_part()
    x = RNG.normal(size=(1, 3, 48, 48)).astype(np.float32)
    benchmark(lambda: fdsp_forward(stack, x, TileGrid(4, 4)))


# ------------------------------------------------- batched/fused hot path
def test_batched_tile_forward_speedup(benchmark):
    """CI gate (DESIGN.md §5i): the worker's batched+fused grid forward
    must be >= 2x the seed per-tile loop on a 2x2-grid vgg_mini.

    The looped lap is the seed worker hot path (one Tensor graph + one
    GEMM sequence per tile); the batched lap is the shipped one (stack the
    grid, one fused no-grad pass, slice) including the concatenate cost.
    """
    model = vgg_mini(input_size=24, base_width=6).eval()
    stack = model.separable_part()
    fused = try_compile(stack)
    assert fused is not None
    grid = TileGrid(2, 2)
    x = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
    tiles = split_array(x, grid)

    def looped():
        with nn.no_grad():
            return [stack(Tensor(t)).data for t in tiles]

    def batched():
        out = fused(np.concatenate(tiles, axis=0))
        return [out[i : i + 1] for i in range(grid.num_tiles)]

    np.testing.assert_array_equal(np.concatenate(batched(), axis=0), np.concatenate(looped(), axis=0))
    t_looped = _timed(looped)
    t_batched = _timed(batched)
    speedup = t_looped / t_batched
    assert speedup >= 2.0, (
        f"batched grid forward only {speedup:.2f}x the per-tile loop "
        f"(looped {t_looped * 1e3:.3f} ms, batched {t_batched * 1e3:.3f} ms)"
    )
    benchmark(batched)


def test_looped_tile_forward_baseline(benchmark):
    """The seed per-tile path, kept as the trend baseline for the gate above."""
    model = vgg_mini(input_size=24, base_width=6).eval()
    stack = model.separable_part()
    tiles = split_array(RNG.normal(size=(1, 3, 24, 24)).astype(np.float32), TileGrid(2, 2))

    def looped():
        with nn.no_grad():
            return [stack(Tensor(t)).data for t in tiles]

    benchmark(looped)


def test_fused_clip_quantize_speedup(benchmark):
    """CI gate: the single-pass clip+quantize must beat the two-stage
    composition at feature-map scale (in-place ops drop ~4 temporaries)."""
    pipe = CompressionPipeline(lower=0.0, upper=6.0, bits=4)
    x = np.maximum(RNG.normal(loc=-1.0, size=(128, 48, 48)), 0).astype(np.float32)

    def unfused():
        return pipe.quantizer.quantize(pipe.clip(x))

    def fused():
        return fused_clip_quantize(
            x, pipe.lower, pipe.upper, pipe.quantizer.step,
            pipe.quantizer.num_levels, pipe.quantizer.level_dtype,
        )

    np.testing.assert_array_equal(fused(), unfused())
    t_unfused = _timed(unfused, repeats=100)
    t_fused = _timed(fused, repeats=100)
    speedup = t_unfused / t_fused
    assert speedup >= 1.2, (
        f"fused clip+quantize only {speedup:.2f}x the composition "
        f"(unfused {t_unfused * 1e6:.0f} us, fused {t_fused * 1e6:.0f} us)"
    )
    benchmark(fused)
