"""Microbenchmarks of the computational kernels underneath every experiment.

These use pytest-benchmark's statistical timing (multiple rounds) — the
numbers to watch when optimizing the NumPy engine.
"""

import numpy as np

import repro.nn.functional as F
from repro.compression import (
    CompressionPipeline,
    pack_levels,
    rle_decode,
    rle_encode,
    unpack,
)
from repro.models import vgg_mini
from repro.nn import Tensor
from repro.partition import TileGrid, fdsp_forward
from repro.runtime import allocate_tiles

RNG = np.random.default_rng(0)


def test_conv2d_forward(benchmark):
    x = Tensor(RNG.normal(size=(4, 16, 32, 32)).astype(np.float32))
    w = Tensor(RNG.normal(size=(32, 16, 3, 3)).astype(np.float32))
    benchmark(lambda: F.conv2d(x, w, padding=1))


def test_conv2d_backward(benchmark):
    x = RNG.normal(size=(4, 16, 32, 32)).astype(np.float32)
    w = Tensor(RNG.normal(size=(32, 16, 3, 3)).astype(np.float32), requires_grad=True)

    def fwd_bwd():
        t = Tensor(x, requires_grad=True)
        F.conv2d(t, w, padding=1).sum().backward()
        w.zero_grad()

    benchmark(fwd_bwd)


def test_max_pool2d(benchmark):
    x = Tensor(RNG.normal(size=(8, 32, 32, 32)).astype(np.float32))
    benchmark(lambda: F.max_pool2d(x, 2))


def test_batch_norm_training(benchmark):
    x = Tensor(RNG.normal(size=(16, 32, 16, 16)).astype(np.float32))
    gamma, beta = Tensor(np.ones(32)), Tensor(np.zeros(32))
    rm, rv = np.zeros(32), np.ones(32)
    benchmark(lambda: F.batch_norm(x, gamma, beta, rm, rv, training=True))


def test_rle_encode_sparse(benchmark):
    levels = np.zeros(200_000, dtype=np.int64)
    levels[RNG.choice(200_000, 5000, replace=False)] = RNG.integers(1, 16, 5000)
    benchmark(lambda: rle_encode(levels))


def test_rle_roundtrip(benchmark):
    levels = np.zeros(50_000, dtype=np.int64)
    levels[RNG.choice(50_000, 2500, replace=False)] = RNG.integers(1, 16, 2500)
    benchmark(lambda: rle_decode(rle_encode(levels)))


def test_packed_encode_sparse(benchmark):
    """Levels -> one contiguous wire buffer (the shm-transport hot path)."""
    levels = np.zeros(200_000, dtype=np.int64)
    levels[RNG.choice(200_000, 5000, replace=False)] = RNG.integers(1, 16, 5000)
    benchmark(lambda: pack_levels(levels))


def test_packed_roundtrip(benchmark):
    levels = np.zeros(50_000, dtype=np.int64)
    levels[RNG.choice(50_000, 2500, replace=False)] = RNG.integers(1, 16, 2500)
    benchmark(lambda: unpack(pack_levels(levels)))


def test_compression_pipeline_packed(benchmark):
    pipe = CompressionPipeline(lower=0.2, upper=2.0, bits=4)
    x = np.maximum(RNG.normal(loc=-1.0, size=(64, 24, 24)), 0).astype(np.float32)
    benchmark(lambda: pipe.decompress(pipe.compress_packed(x)))


def test_compression_pipeline(benchmark):
    pipe = CompressionPipeline(lower=0.2, upper=2.0, bits=4)
    x = np.maximum(RNG.normal(loc=-1.0, size=(64, 24, 24)), 0).astype(np.float32)
    benchmark(lambda: pipe.apply(x))


def test_tile_allocation(benchmark):
    rates = RNG.uniform(0.5, 8.0, size=8)
    benchmark(lambda: allocate_tiles(64, rates))


def test_fdsp_tile_forward(benchmark):
    model = vgg_mini(input_size=48, base_width=8).eval()
    stack = model.separable_part()
    x = RNG.normal(size=(1, 3, 48, 48)).astype(np.float32)
    benchmark(lambda: fdsp_forward(stack, x, TileGrid(4, 4)))
