"""Benchmark regenerating Table 1 (epochs per progressive-retraining stage)."""

from repro.experiments import table1_epochs


def test_table1_retrain_epochs(run_experiment):
    report = run_experiment(
        table1_epochs.run, models=("vgg_mini", "charcnn_mini"), base_epochs=4, max_epochs_per_stage=4
    )
    totals = [r for r in report.rows if r["stage"] == "Total"]
    # Paper claim: a handful of epochs per model, far below full training.
    for row in totals:
        assert row["epochs"] <= 12
