"""A/B benchmarks for the tile transport and wire codec (ISSUE 3).

Two comparisons, both asserted (so CI's perf-smoke job fails on
regression), both also timed with pytest-benchmark for trend tracking:

- **codec**: packed byte-level encode (``pack_levels``) vs the tuple-based
  ``rle_encode`` on the same quantized activations — the packed codec must
  not be slower, and its serialized size must be >= 5x smaller than the
  pickled :class:`RLEStream` a result message used to carry.
- **transport**: end-to-end ``ProcessCluster.infer`` latency on the
  vgg_mini FDSP workload over ``transport="shm"`` vs ``"pickle"`` — shm
  must not regress the median latency beyond noise.
"""

import pickle
import time

import numpy as np
import pytest

from repro.compression import CompressionPipeline, pack_levels, rle_encode, unpack
from repro.models import vgg_mini
from repro.partition import TileGrid
from repro.runtime import ProcessCluster, ProcessClusterConfig, TileResult
from repro.runtime.shm_arena import shm_available
from repro.runtime.shm_arena import ShmRef

RNG = np.random.default_rng(7)

needs_shm = pytest.mark.skipif(not shm_available(), reason="POSIX shared memory unavailable")


def activations():
    """A realistic separable-stack output: post-ReLU, ~70% sparse."""
    return np.maximum(RNG.normal(loc=-1.0, size=(64, 24, 24)), 0).astype(np.float32)


def quantized_levels():
    pipe = CompressionPipeline(bits=4)
    return pipe.quantizer.quantize(pipe.clip(activations()))


# ------------------------------------------------------------------- codec
def test_packed_encode_not_slower_than_tuple(benchmark):
    """CI gate: the packed codec must beat (or match) the tuple codec."""
    levels = quantized_levels()

    def timed(fn, repeats=20):
        fn()
        t0 = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - t0) / repeats

    t_tuple = timed(lambda: rle_encode(levels))
    t_packed = timed(lambda: pack_levels(levels))
    assert t_packed <= t_tuple * 1.10, (
        f"packed encode ({t_packed * 1e3:.3f} ms) slower than "
        f"tuple encode ({t_tuple * 1e3:.3f} ms)"
    )
    benchmark(lambda: pack_levels(levels))


def test_tuple_encode_baseline(benchmark):
    levels = quantized_levels()
    benchmark(lambda: rle_encode(levels))


def test_packed_decode(benchmark):
    packed = pack_levels(quantized_levels())
    benchmark(lambda: unpack(packed))


def test_result_ipc_bytes_reduction():
    """Acceptance: >= 5x fewer per-tile-result IPC bytes than the pickled
    RLEStream payload — for the packed buffer alone AND for the shm
    descriptor that actually rides the queue."""
    pipe = CompressionPipeline(bits=4)
    x = activations()
    pickled_tuple = len(pickle.dumps(TileResult(0, 0, pipe.compress(x), 0)))
    pt = pipe.compress_packed(x)
    assert pickled_tuple >= 5 * pt.packed.nbytes, (
        f"packed buffer {pt.packed.nbytes} B vs pickled stream {pickled_tuple} B"
    )
    ref = ShmRef(name="psm_abcdef00", nbytes=pt.packed.nbytes, kind="packed", raw_bits=pt.raw_bits)
    pickled_descriptor = len(pickle.dumps(TileResult(0, 0, ref, 0)))
    assert pickled_tuple >= 5 * pickled_descriptor, (
        f"descriptor message {pickled_descriptor} B vs pickled stream {pickled_tuple} B"
    )


# --------------------------------------------------------------- transport
def _infer_latency(transport: str, n_images: int = 4) -> float:
    model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()
    imgs = [RNG.normal(size=(1, 3, 24, 24)).astype(np.float32) for _ in range(n_images)]
    cfg = ProcessClusterConfig(num_workers=2, transport=transport)
    with ProcessCluster(model, TileGrid(2, 2), CompressionPipeline(bits=4), cfg) as cluster:
        cluster.infer(imgs[0])  # warm-up: fork, arenas, first grants
        laps = []
        for img in imgs:
            t0 = time.perf_counter()
            cluster.infer(img)
            laps.append(time.perf_counter() - t0)
    return float(np.median(laps))


@needs_shm
def test_shm_transport_no_latency_regression():
    """Acceptance: shm transport does not regress e2e infer latency on the
    vgg_mini FDSP workload (generous 1.5x noise bound — queue scheduling
    on a loaded CI box is jittery)."""
    t_pickle = _infer_latency("pickle")
    t_shm = _infer_latency("shm")
    assert t_shm <= t_pickle * 1.5, (
        f"shm transport {t_shm * 1e3:.1f} ms vs pickle {t_pickle * 1e3:.1f} ms"
    )


@needs_shm
def test_infer_shm(benchmark):
    model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()
    img = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
    cfg = ProcessClusterConfig(num_workers=2, transport="shm")
    with ProcessCluster(model, TileGrid(2, 2), CompressionPipeline(bits=4), cfg) as cluster:
        cluster.infer(img)
        benchmark(lambda: cluster.infer(img))


def test_infer_pickle(benchmark):
    model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()
    img = RNG.normal(size=(1, 3, 24, 24)).astype(np.float32)
    cfg = ProcessClusterConfig(num_workers=2, transport="pickle")
    with ProcessCluster(model, TileGrid(2, 2), CompressionPipeline(bits=4), cfg) as cluster:
        cluster.infer(img)
        benchmark(lambda: cluster.infer(img))
