"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Progressive (Algorithm 1) vs all-at-once retraining at an equal epoch
   budget (§5's motivation for progressive retraining).
2. AOFL fuse-depth sweep: the compute-overhead-vs-communication trade that
   drives §7.4's exhaustive search.
3. Deadline-slack sweep: zero-fill rate vs latency (the T_L trade-off).
4. EWMA gamma sweep: adaptation speed after a node degradation.
"""

import numpy as np
import pytest

from repro.baselines import aofl_latency
from repro.experiments.fig10_accuracy import prepare_task
from repro.models import get_spec
from repro.nn.losses import cross_entropy
from repro.partition import TileGrid
from repro.runtime import ADCNNConfig, StatisticsCollector
from repro.simulator import CpuSchedule
from repro.training import TrainConfig, oneshot_retrain, progressive_retrain, train_epochs


def test_progressive_vs_oneshot(benchmark):
    """Algorithm 1 should match or beat all-at-once at equal budgets."""
    cfg = TrainConfig(lr=0.05, batch_size=16)

    def ablation():
        results = {}
        for mode, fn, kwargs in (
            ("progressive", progressive_retrain, {"max_epochs_per_stage": 2}),
            ("oneshot", oneshot_retrain, {"max_epochs": 6}),
        ):
            model, (xs, ys), loss_fn, metric = prepare_task("vgg_mini", seed=11)
            train_epochs(model, xs, ys, loss_fn, epochs=4, config=cfg)
            res = fn(model, "4x4", xs, ys, loss_fn, metric, config=cfg, **kwargs)
            results[mode] = res.final_metric
        return results

    results = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print(f"\nprogressive={results['progressive']:.3f} oneshot={results['oneshot']:.3f}")
    assert results["progressive"] >= results["oneshot"] - 0.05


def test_aofl_fuse_depth_sweep(benchmark):
    """Deeper fusion: compute overhead rises monotonically (§7.4)."""
    spec = get_spec("vgg16")

    def sweep():
        rows = []
        for d in (1, 2, 4, 7):
            res = aofl_latency(spec, TileGrid(2, 4), fuse_depth=d)
            rows.append((d, res.groups[0].compute_overhead, res.total_s))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for d, ovh, total in rows:
        print(f"fuse_depth={d}: overhead={ovh:.2f}x total={total * 1000:.1f}ms")
    overheads = [r[1] for r in rows]
    assert all(a <= b for a, b in zip(overheads, overheads[1:]))


def test_deadline_slack_sweep(benchmark):
    """Tighter deadlines trade zero-filled tiles for bounded latency."""
    from repro.experiments import build_adcnn_system

    schedules = [CpuSchedule()] * 6 + [CpuSchedule(((0.0, 0.3),))] * 2

    def sweep():
        rows = []
        for slack in (1.05, 2.0, 4.0):
            system = build_adcnn_system(
                "vgg16", num_nodes=8, schedules=schedules,
                config=ADCNNConfig(pipeline_depth=1, deadline_slack=slack),
            )
            recs = system.run(10)
            rows.append(
                (slack, system.mean_latency(skip=1) * 1000, sum(r.zero_filled_tiles for r in recs))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for slack, lat, lost in rows:
        print(f"slack={slack}: latency={lat:.0f}ms zero_filled={lost}")
    # Tightest deadline loses the most tiles; loosest loses none.
    assert rows[0][2] >= rows[-1][2]


def test_gamma_adaptation_speed(benchmark):
    """Algorithm 2's gamma: larger = faster convergence to new rates."""

    def sweep():
        rows = []
        for gamma in (0.3, 0.9):
            stats = StatisticsCollector(2, gamma=gamma, initial=8.0)
            steps = 0
            while abs(stats.rates()[1] - 2.0) > 0.5 and steps < 50:
                stats.update([8, 2])
                steps += 1
            rows.append((gamma, steps))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for gamma, steps in rows:
        print(f"gamma={gamma}: {steps} images to converge")
    assert rows[1][1] < rows[0][1]
