"""Telemetry overhead: enabled vs no-op recorder on a fig11-style stream.

The claim under test is that instrumentation is cheap enough to leave on:
mean image latency with a full :class:`TelemetryRecorder` must stay within
3% of the :class:`NullRecorder` default.

Measuring that directly as an A/B latency diff is hopeless on shared
1-core CI hardware — run-to-run noise (CPU steal, scheduler churn between
the central and worker processes) is ±10%, an order of magnitude above the
effect.  So the bench decomposes the claim into two stable measurements:

1. an instrumented fig11-style stream (2 workers, §4 compression) gives
   the real mean image latency AND the exact event stream telemetry
   recorded for it;
2. replaying that exact event stream into a fresh recorder in a tight
   single-threaded loop prices what recording cost — min-of-N of a pure
   CPU loop is robust to steal (interference stretches a run, never
   shrinks it).

Everything telemetry adds to the latency path is recording calls plus a
few clock reads, so ``replay_cost / (images * mean_latency)`` bounds the
overhead; a 1.5x safety factor covers the handful of clock reads the
replay does not reproduce (the replay already prices one counter update
per event, more than the real instrumentation performs).  The raw A/B diff is still printed and
stored in ``extra_info`` for the curious — just not asserted on.

The instrumented arm records with §5h *tracing on* (every enabled run
mints TraceContexts and tags spans with the trace triple), so the <3%
budget covers tracing-enabled instrumentation, not a stripped-down
recorder — the replay re-records the trace fields verbatim because they
arrive as ordinary span kwargs.
"""

import time

import numpy as np

from repro.compression import CompressionPipeline
from repro.models import vgg_mini
from repro.runtime import ProcessCluster, ProcessClusterConfig
from repro.telemetry import TelemetryRecorder

NUM_IMAGES = 24
REPLAY_ROUNDS = 15
SAFETY_FACTOR = 1.5
MAX_OVERHEAD = 0.03


def _stream(cluster, images) -> float:
    """Mean image wall latency over the stream (first image discarded)."""
    outcomes = cluster.infer_stream(list(images), pipeline_depth=1)
    return float(np.mean([o.wall_seconds for o in outcomes[1:]]))


def _replay_seconds(events) -> float:
    """Best-of-N time to re-record the run's exact event stream."""
    best = float("inf")
    for _ in range(REPLAY_ROUNDS):
        sink = TelemetryRecorder()
        t0 = time.perf_counter()
        for ev in events:
            if "duration" in ev:
                extra = {k: v for k, v in ev.items()
                         if k not in ("time", "kind", "duration", "node", "image_id")}
                sink.span(ev["kind"], ev["time"], ev["duration"], node=ev.get("node"),
                          image_id=ev.get("image_id"), **extra)
            else:
                extra = {k: v for k, v in ev.items() if k not in ("time", "kind")}
                sink.record(ev["time"], ev["kind"], **extra)
            sink.count("adcnn_replay_total")  # price one counter hit per event
        best = min(best, time.perf_counter() - t0)
    return best


def test_telemetry_overhead_under_three_percent(benchmark):
    model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()
    rng = np.random.default_rng(11)
    images = rng.normal(size=(NUM_IMAGES, 1, 3, 24, 24)).astype(np.float32)
    cfg = ProcessClusterConfig(num_workers=2, t_limit=30.0)
    telemetry = TelemetryRecorder()

    def instrumented_run():
        with ProcessCluster(model, "2x2", pipeline=CompressionPipeline(), config=cfg) as null_cluster, \
             ProcessCluster(model, "2x2", pipeline=CompressionPipeline(), config=cfg,
                            telemetry=telemetry) as tel_cluster:
            _stream(null_cluster, images[:4])  # warm both clusters up
            _stream(tel_cluster, images[:4])
            telemetry.clear()
            return _stream(null_cluster, images), _stream(tel_cluster, images)

    null_latency, tel_latency = benchmark.pedantic(instrumented_run, rounds=1, iterations=1)

    events = telemetry.events
    assert events, "telemetry arm recorded nothing — instrumentation is dead"
    # The priced stream must be the tracing-enabled one: span events carry
    # the §5h trace triple, and every image produced a request root.
    assert any("trace_id" in ev for ev in events), "no trace-annotated events recorded"
    roots = [ev for ev in events if ev["kind"] == "request"]
    assert len(roots) == NUM_IMAGES, "expected one request root span per image"
    recording_s = _replay_seconds(events)
    per_image_cost = recording_s * SAFETY_FACTOR / (NUM_IMAGES - 1)
    overhead = per_image_cost / tel_latency
    ab_diff = tel_latency / null_latency - 1.0

    benchmark.extra_info["mean_latency_s"] = tel_latency
    benchmark.extra_info["events_per_image"] = len(events) / (NUM_IMAGES - 1)
    benchmark.extra_info["recording_cost_per_image_s"] = per_image_cost
    benchmark.extra_info["overhead_fraction"] = overhead
    benchmark.extra_info["ab_diff_fraction_noisy"] = ab_diff
    print(f"\nmean latency {tel_latency * 1e3:.3f} ms/image, "
          f"{len(events) / (NUM_IMAGES - 1):.1f} events/image costing "
          f"{per_image_cost * 1e6:.1f} us/image (x{SAFETY_FACTOR:.1f} safety) "
          f"-> overhead {overhead * 100:.3f}% (A/B diff {ab_diff * 100:+.2f}%, noise-dominated)")
    assert overhead < MAX_OVERHEAD, (
        f"telemetry recording overhead {overhead * 100:.2f}% exceeds {MAX_OVERHEAD * 100:.0f}% budget"
    )
