"""Benchmark regenerating Figure 10 (accuracy vs partition grid).

Trains the mini models on the synthetic datasets and progressively retrains
one copy per partition option — the heaviest benchmark in the suite.
"""

from repro.experiments import fig10_accuracy


def test_fig10_accuracy(run_experiment):
    report = run_experiment(
        fig10_accuracy.run,
        models=("vgg_mini", "charcnn_mini"),
        partitions=("2x2", "4x4", "8x8"),
        base_epochs=4,
        max_epochs_per_stage=2,
    )
    # The paper's claim: retrained accuracy within ~1% of the original.
    for row in report.rows:
        assert row["degradation"] <= 0.08, row


def test_fig10_all_five_model_families(run_experiment):
    """Every paper task family survives Algorithm 1 at the 8x8 partition:
    classification (VGG/ResNet), segmentation (FCN), detection (YOLO),
    text (CharCNN)."""
    report = run_experiment(
        fig10_accuracy.run,
        models=("vgg_mini", "resnet_mini", "fcn_mini", "yolo_mini", "charcnn_mini"),
        partitions=("8x8",),
        base_epochs=4,
        max_epochs_per_stage=2,
    )
    assert len(report.rows) == 5
    for row in report.rows:
        assert row["degradation"] <= 0.10, row
