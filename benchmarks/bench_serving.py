"""Open-loop serving benchmarks (ISSUE 6).

Two measurements, both asserted so CI's perf-smoke job fails on regression,
both exporting their curves through pytest-benchmark's ``extra_info`` (the
uploaded ``bench_serving.json`` artifact carries the raw numbers):

- **DES saturation curve**: sweep Poisson offered load over the vgg16
  8-node simulated cluster and check the textbook shape — goodput ~1 below
  the knee, a throughput plateau past it, and a p99 sojourn blow-up at
  overload (this is the curve a capacity planner reads the cluster's
  serving limit from).
- **p99 under burst (process backend)**: a real 2-worker cluster behind
  :class:`~repro.serving.ServingFrontEnd`, driven through a steady phase
  and then a burst that overruns the admission queue — the burst must shed
  with :class:`~repro.serving.Overloaded` (never block or crash), every
  admitted image must still resolve, and the drain must be clean.
"""

import concurrent.futures
import time

import numpy as np

from repro.models import get_spec, vgg_mini
from repro.partition import TileGrid
from repro.profiling import RASPBERRY_PI_3B
from repro.runtime import (
    ADCNNSystem,
    ADCNNWorkload,
    ProcessCluster,
    ProcessClusterConfig,
    poisson_arrival_times,
)
from repro.serving import Overloaded, ServingConfig, ServingFrontEnd
from repro.simulator import SimNode, saturation_knee, saturation_point

RNG_SEED = 7


# ------------------------------------------------------- DES saturation
def des_saturation_curve(rates=(1.0, 2.0, 4.0, 8.0, 16.0), images_per_rate=80):
    wl = ADCNNWorkload.from_spec(
        get_spec("vgg16"), num_tiles=64, separable_prefix=13, compression_ratio=0.032
    )
    rng = np.random.default_rng(RNG_SEED)
    points = []
    for rate in rates:
        nodes = [SimNode(f"n{i}", RASPBERRY_PI_3B) for i in range(8)]
        system = ADCNNSystem(wl, nodes, SimNode("central", RASPBERRY_PI_3B))
        arrivals = poisson_arrival_times(rate, images_per_rate, rng)
        result = system.run_open_loop(arrivals, queue_capacity=8)
        points.append(saturation_point(rate, result))
    return points


def test_des_throughput_saturates(benchmark):
    """CI gate: the open-loop DES sweep must show a saturation knee."""
    points = benchmark.pedantic(des_saturation_curve, rounds=1, iterations=1)
    benchmark.extra_info["curve"] = [
        {
            "offered_hz": p.offered_rate_hz,
            "throughput_hz": p.throughput_hz,
            "p50_sojourn_s": p.p50_sojourn_s,
            "p99_sojourn_s": p.p99_sojourn_s,
            "shed_fraction": p.shed_fraction,
        }
        for p in points
    ]
    print("\noffered_hz  throughput_hz  p50_s   p99_s   shed")
    for p in points:
        print(
            f"{p.offered_rate_hz:9.1f}  {p.throughput_hz:12.2f}"
            f"  {p.p50_sojourn_s:6.3f}  {p.p99_sojourn_s:6.3f}  {p.shed_fraction:5.2f}"
        )
    low, high = points[0], points[-1]
    # Below the knee the system keeps up: delivered ~= offered, no shedding.
    assert low.goodput_ratio > 0.85, f"unsaturated point already lossy: {low}"
    assert low.shed_fraction == 0.0
    # The sweep must cross the knee ...
    knee = saturation_knee(points)
    assert knee is not None, "sweep never saturated — raise the top offered rate"
    # ... past which throughput plateaus (cannot scale with offered load)
    # while the sojourn tail and the shed fraction blow up.
    assert high.throughput_hz < high.offered_rate_hz * 0.75
    assert high.p99_sojourn_s > 3.0 * low.p99_sojourn_s
    assert high.shed_fraction > 0.0


# ------------------------------------------- process backend, p99 burst
def burst_serve(num_workers=2, steady_images=6, burst_images=24):
    model = vgg_mini(num_classes=3, input_size=24, base_width=6, separable_prefix=2).eval()
    rng = np.random.default_rng(RNG_SEED)
    image = rng.normal(size=(1, 3, 24, 24)).astype(np.float32)
    # Artificially slow workers make per-image service time ~100 ms so the
    # back-to-back burst overruns window + queue deterministically.
    config = ProcessClusterConfig(
        num_workers=num_workers, t_limit=30.0, delay_per_tile=(0.02,) * num_workers
    )
    cluster = ProcessCluster(model, TileGrid(2, 2), config=config)
    steady: list[concurrent.futures.Future] = []
    burst: list[concurrent.futures.Future] = []
    shed = 0
    with ServingFrontEnd(
        cluster, ServingConfig(window=2, queue_capacity=4, slo_seconds=0.5)
    ) as fe:
        for _ in range(steady_images):  # paced: arrivals ~ service rate
            steady.append(fe.submit(image, client="steady"))
            time.sleep(0.1)
        for _ in range(burst_images):  # open loop: as fast as possible
            try:
                burst.append(fe.submit(image, client="burst"))
            except Overloaded:
                shed += 1
        results = [f.result(timeout=60.0) for f in steady + burst]
    return {
        "admitted": len(steady) + len(burst),
        "completed": len(results),
        "shed": shed,
        "steady_p50_s": float(np.quantile([r.latency_s for r in results[:steady_images]], 0.5)),
        "burst_p99_s": float(np.quantile([r.latency_s for r in results[steady_images:]], 0.99)),
        "slo_misses": sum(r.slo_miss for r in results),
    }


def test_process_backend_p99_under_burst(benchmark):
    """CI gate: bursts shed instead of blocking; admitted work all lands."""
    stats = benchmark.pedantic(burst_serve, rounds=1, iterations=1)
    benchmark.extra_info["burst"] = stats
    print(f"\n{stats}")
    # Graceful drain: every admitted image resolved with an outcome.
    assert stats["completed"] == stats["admitted"]
    # The burst overran window + queue: shedding is load control working.
    assert stats["shed"] > 0, "burst never shed — queue_capacity too large for the burst"
    # Queueing shows up in the tail: the burst p99 carries admission-queue
    # wait the paced steady phase never sees.
    assert stats["burst_p99_s"] > stats["steady_p50_s"]
